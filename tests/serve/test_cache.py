"""Unit tests for the journal-keyed answer cache (serve/cache.py):
canonical-key quantization and dominance collisions, sharded LRU
accounting, precise journal-driven invalidation, the generation-token
fill protocol, error transparency of the caching client, and the cache
counters surfaced through ``health()`` and the ``HEALTH`` frame."""

from __future__ import annotations

import pytest

from tests.helpers import thresholds_for

from repro.core import DirectedWCIndex, WeightedWCIndex, build_wc_index_plus
from repro.graph.digraph import DiGraph
from repro.graph.generators import scale_free_network
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.serve import (
    MISS,
    AnswerCache,
    CachingClient,
    InProcessClient,
    NetClient,
    NetServerThread,
    PoolClient,
    QueryServer,
)

INF = float("inf")


def small_graph() -> Graph:
    g = Graph(6)
    for u, v, q in [
        (0, 1, 1.0),
        (1, 2, 2.0),
        (2, 3, 1.5),
        (3, 4, 3.0),
        (4, 5, 2.5),
        (0, 5, 0.5),
    ]:
        g.add_edge(u, v, q)
    return g


def small_frozen():
    return build_wc_index_plus(small_graph(), "degree").freeze()


class TestQuantization:
    def test_levels_are_sorted_distinct_label_qualities(self):
        cache = AnswerCache(small_frozen(), entries=16)
        levels = cache.quality_levels
        assert list(levels) == sorted(set(levels))
        assert all(b > a for a, b in zip(levels, levels[1:]))

    def test_threshold_quantizes_up_to_next_level(self):
        cache = AnswerCache(small_frozen(), entries=16)
        levels = cache.quality_levels
        for a, b in zip(levels, levels[1:]):
            mid = (a + b) / 2.0
            assert cache.key_for((0, 3, mid)) == cache.key_for((0, 3, b))
            assert cache.key_for((0, 3, mid)) != cache.key_for((0, 3, a))

    def test_exact_level_is_its_own_bucket(self):
        cache = AnswerCache(small_frozen(), entries=16)
        for level in cache.quality_levels:
            assert cache.key_for((0, 3, level))[2] == level

    def test_above_max_shares_one_infeasible_bucket(self):
        cache = AnswerCache(small_frozen(), entries=16)
        top = cache.quality_levels[-1]
        assert cache.key_for((0, 3, top + 0.5)) == cache.key_for(
            (0, 3, top + 100.0)
        )
        assert cache.key_for((0, 3, top + 0.5))[2] == INF

    def test_quantized_thresholds_answer_identically(self):
        # The collision is sound: every threshold that maps to one
        # canonical key produces one answer (constant per bucket).
        graph = small_graph()
        frozen = build_wc_index_plus(graph, "degree").freeze()
        cache = AnswerCache(frozen, entries=256)
        per_key = {}
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                for w in thresholds_for(graph):
                    key = cache.key_for((s, t, w))
                    answer = frozen.distance(s, t, w)
                    assert per_key.setdefault(key, answer) == answer

    def test_dominance_collision_fills_one_entry(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=64)
        client = CachingClient(InProcessClient(frozen), cache)
        a, b = cache.quality_levels[0], cache.quality_levels[1]
        mid = (a + b) / 2.0
        client.distance_many([(0, 3, mid), (0, 3, b), (3, 0, b)])
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["misses"] == 3
        again = client.distance_many([(0, 3, mid)])
        assert again == [frozen.distance(0, 3, b)]
        assert cache.snapshot()["hits"] == 1


class TestCanonicalPairs:
    def test_undirected_pair_normalizes(self):
        cache = AnswerCache(small_frozen(), entries=16)
        assert cache.key_for((0, 3, 1.0)) == cache.key_for((3, 0, 1.0))

    def test_weighted_pair_normalizes(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, length=2.0, quality=1.0)
        g.add_edge(1, 2, length=1.0, quality=2.0)
        g.add_edge(2, 3, length=4.0, quality=1.0)
        cache = AnswerCache(WeightedWCIndex(g).freeze(), entries=16)
        assert cache.key_for((0, 3, 1.0)) == cache.key_for((3, 0, 1.0))

    def test_directed_pair_keeps_orientation(self):
        g = DiGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(2, 3, 1.0)
        cache = AnswerCache(DirectedWCIndex(g).freeze(), entries=16)
        assert cache.key_for((0, 3, 1.0)) != cache.key_for((3, 0, 1.0))

    def test_bypass_keys(self):
        cache = AnswerCache(small_frozen(), entries=16)
        assert cache.key_for((0,)) is None  # malformed
        assert cache.key_for((0, 99, 1.0)) is None  # out of range
        assert cache.key_for((-1, 3, 1.0)) is None
        assert cache.key_for((0.5, 3, 1.0)) is None  # non-int vertex
        assert cache.key_for((0, 3, float("nan"))) is None
        assert cache.key_for((0, 3, "w")) is None


class TestLRUAccounting:
    def test_capacity_validation(self):
        frozen = small_frozen()
        with pytest.raises(ValueError, match="entries"):
            AnswerCache(frozen, entries=0)
        with pytest.raises(ValueError, match="shards"):
            AnswerCache(frozen, entries=4, shards=0)

    def test_shards_never_exceed_entries(self):
        cache = AnswerCache(small_frozen(), entries=2, shards=8)
        assert cache.capacity >= 2
        assert len(cache.snapshot()["shards"]) <= 2

    def test_eviction_counts_and_respects_capacity(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=4, shards=1)
        client = CachingClient(InProcessClient(frozen), cache)
        queries = [
            (s, t, 1.0) for s in range(6) for t in range(s + 1, 6)
        ]
        client.distance_many(queries)
        snap = cache.snapshot()
        assert snap["entries"] == 4
        assert snap["evictions"] == len(queries) - 4
        assert sum(snap["shards"]) == snap["entries"]

    def test_lru_keeps_recent_entries(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=2, shards=1)
        token = cache.token()
        key_01 = cache.key_for((0, 1, 1.0))
        key_02 = cache.key_for((0, 2, 1.0))
        key_03 = cache.key_for((0, 3, 1.0))
        cache.put(key_01, 1.0, token)
        cache.put(key_02, 2.0, token)
        assert cache.get(key_01) == 1.0  # refresh 0-1
        cache.put(key_03, 3.0, token)  # evicts 0-2
        assert cache.get(key_01, count=False) is not MISS
        assert cache.get(key_02, count=False) is MISS

    def test_snapshot_shape(self):
        snap = AnswerCache(small_frozen(), entries=16, shards=4).snapshot()
        for field in (
            "entries",
            "capacity",
            "shards",
            "hits",
            "misses",
            "evictions",
            "invalidations",
            "invalidated_entries",
            "flushes",
            "generation",
            "suspended",
        ):
            assert field in snap
        assert len(snap["shards"]) == 4
        assert snap["suspended"] is False


class TestInvalidation:
    def test_disjoint_entries_survive(self):
        # Two components: labels of one cannot reach the other, so
        # dirtying component A must keep component B's entries warm.
        g = Graph(6)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(3, 4, 1.0)
        g.add_edge(4, 5, 2.0)
        frozen = build_wc_index_plus(g, "degree").freeze()
        cache = AnswerCache(frozen, entries=64)
        client = CachingClient(InProcessClient(frozen), cache)
        client.distance_many([(0, 2, 1.0), (3, 5, 1.0)])
        dropped = cache.invalidate(frozenset([0, 1, 2]))
        assert dropped == 1
        assert cache.get(cache.key_for((3, 5, 1.0)), count=False) is not MISS
        assert cache.get(cache.key_for((0, 2, 1.0)), count=False) is MISS

    def test_empty_dirty_set_keeps_everything_but_bumps_generation(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        client = CachingClient(InProcessClient(frozen), cache)
        client.distance_many([(0, 1, 1.0)])
        before = cache.token()
        assert cache.invalidate(frozenset()) == 0
        assert cache.token() == before + 1
        assert len(cache) == 1

    def test_on_republish_incremental_invalidates(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        client = CachingClient(InProcessClient(frozen), cache)
        client.distance_many([(0, 1, 1.0)])
        dropped = cache.on_republish(
            engine=frozen, dirty=frozenset(range(6)), incremental=True
        )
        assert dropped == 1
        snap = cache.snapshot()
        assert snap["invalidations"] == 1
        assert snap["invalidated_entries"] == 1
        assert snap["suspended"] is False

    def test_on_republish_full_rebuild_flushes(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        client = CachingClient(InProcessClient(frozen), cache)
        client.distance_many([(0, 1, 1.0), (2, 3, 1.0)])
        dropped = cache.on_republish(
            engine=frozen, dirty=frozenset([0]), incremental=False
        )
        assert dropped == 2
        assert cache.snapshot()["flushes"] == 1
        assert len(cache) == 0

    def test_on_republish_without_engine_suspends(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        client = CachingClient(InProcessClient(frozen), cache)
        client.distance_many([(0, 1, 1.0)])
        cache.on_republish(engine=None, dirty=frozenset([0]))
        snap = cache.snapshot()
        assert snap["suspended"] is True
        assert snap["entries"] == 0
        # Suspended: lookups bypass, fills drop, answers stay correct.
        assert cache.key_for((0, 1, 1.0)) is None
        answers = client.distance_many([(0, 1, 1.0)])
        assert answers == frozen.distance_many([(0, 1, 1.0)])
        assert len(cache) == 0

    def test_stale_token_fill_is_dropped(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        key = cache.key_for((0, 1, 1.0))
        token = cache.token()
        cache.invalidate(frozenset([0]))
        assert cache.put(key, 2.0, token) is False
        assert cache.get(key, count=False) is MISS
        assert cache.put(key, 2.0, cache.token()) is True
        assert cache.get(key, count=False) == 2.0


class TestCachingClient:
    def test_bit_identical_answers_and_hits(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=256)
        client = CachingClient(InProcessClient(frozen), cache)
        graph = small_graph()
        queries = [
            (s, t, w)
            for s in range(6)
            for t in range(6)
            for w in thresholds_for(graph)
        ]
        assert client.distance_many(queries) == frozen.distance_many(queries)
        assert client.distance_many(queries) == frozen.distance_many(queries)
        snap = cache.snapshot()
        assert snap["hits"] >= len(queries)

    def test_duplicate_misses_forward_once(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)

        class CountingClient(InProcessClient):
            forwarded = 0

            def distance_many(self, queries):
                CountingClient.forwarded += len(queries)
                return super().distance_many(queries)

        client = CachingClient(CountingClient(frozen), cache)
        answers = client.distance_many(
            [(0, 3, 1.0), (3, 0, 1.0), (0, 3, 1.0)]
        )
        assert CountingClient.forwarded == 1
        assert len(set(answers)) == 1

    def test_malformed_query_raises_engine_error(self):
        frozen = small_frozen()
        client = CachingClient(
            InProcessClient(frozen), AnswerCache(frozen, entries=16)
        )
        with pytest.raises(ValueError) as cached_err:
            client.distance_many([(0, 1, 1.0), (0, 99, 1.0)])
        with pytest.raises(ValueError) as plain_err:
            frozen.distance_many([(0, 1, 1.0), (0, 99, 1.0)])
        assert str(cached_err.value) == str(plain_err.value)

    def test_malformed_query_is_never_cached(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        client = CachingClient(InProcessClient(frozen), cache)
        with pytest.raises(ValueError):
            client.distance_many([(0, 99, 1.0)])
        assert len(cache) == 0

    def test_cached_answers_fast_path(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        client = CachingClient(InProcessClient(frozen), cache)
        batch = [(0, 3, 1.0), (1, 4, 2.0)]
        assert client.cached_answers(batch) is None  # cold
        expected = client.distance_many(batch)
        assert client.cached_answers(batch) == expected
        assert client.cached_answers(batch + [(2, 5, 1.0)]) is None

    def test_health_carries_cache_section(self):
        frozen = small_frozen()
        cache = AnswerCache(frozen, entries=16)
        client = CachingClient(InProcessClient(frozen), cache)
        report = client.health()
        assert report["cache"]["capacity"] == cache.capacity

    def test_owns_client_closes_inner(self):
        frozen = small_frozen()
        inner = InProcessClient(frozen)
        client = CachingClient(
            inner, AnswerCache(frozen, entries=16), owns_client=True
        )
        client.close()
        with pytest.raises(RuntimeError):
            client.distance_many([(0, 1, 1.0)])
        with pytest.raises(RuntimeError):
            inner.distance_many([(0, 1, 1.0)])


@pytest.fixture(scope="module")
def pool_frozen():
    network = scale_free_network(60, 3, num_qualities=4, seed=11)
    return build_wc_index_plus(network).freeze()


class TestServerIntegration:
    def test_attach_cache_and_swap_invalidation(self, pool_frozen):
        with QueryServer(pool_frozen, workers=2) as server:
            cache = server.attach_cache(
                AnswerCache(pool_frozen, entries=256)
            )
            client = CachingClient(PoolClient(server), cache)
            queries = [(0, 5, 2.0), (1, 7, 1.0)]
            expected = client.distance_many(queries)
            assert server.health()["cache"]["entries"] == len(cache)
            server.swap_image(
                pool_frozen, validate=False, dirty=frozenset([0]),
                incremental=True,
            )
            snap = cache.snapshot()
            assert snap["invalidations"] == 1
            assert client.distance_many(queries) == expected

    def test_swap_from_path_suspends_cache(self, pool_frozen, tmp_path):
        from repro.core import save_frozen

        image = tmp_path / "image.wcxb"
        save_frozen(pool_frozen, image)
        with QueryServer(pool_frozen, workers=2) as server:
            cache = server.attach_cache(
                AnswerCache(pool_frozen, entries=256)
            )
            server.swap_image(str(image), validate=False)
            assert cache.snapshot()["suspended"] is True

    def test_health_frame_reports_cache(self, pool_frozen):
        cache = AnswerCache(pool_frozen, entries=64)
        backend = CachingClient(InProcessClient(pool_frozen), cache)
        with NetServerThread(backend, host="127.0.0.1", port=0) as server:
            host, port = server.address
            with NetClient(host, port) as client:
                client.distance_many([(0, 5, 2.0)])
                client.distance_many([(0, 5, 2.0)])
                report = client.health()
        counters = report["backend"]["cache"]
        assert counters["misses"] >= 1
        assert counters["hits"] >= 1
        assert counters["entries"] >= 1
