"""Property-based equivalence of the cached serving stack.

The correctness bar of the answer cache: a :class:`CachingClient` in
front of an engine answers **bit-identically** to the uncached engine
under arbitrary interleavings of query batches and journaled update
batches — every republish drives the journal's dirty set through
``on_republish`` exactly like ``QueryServer.swap_image`` does.  Checked
for all three index families over the hypothesis graph strategies, with
deliberately tiny cache capacities in the mix so eviction interleaves
with invalidation.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.test_properties import (
    quality_digraphs,
    quality_graphs,
    quality_weighted_graphs,
)

from repro.core import DirectedWCIndex, WeightedWCIndex, build_wc_index_plus
from repro.live import live_index
from repro.live.refreeze import refreeze
from repro.serve import AnswerCache, CachingClient, InProcessClient

MAX_QUALITY = 4.0


def fresh_build(graph, weighted=False, directed=False):
    """A from-scratch index over the mutated graph — the independent
    oracle the cached stack must agree with at the end."""
    if directed:
        return DirectedWCIndex(graph)
    if weighted:
        return WeightedWCIndex(graph)
    return build_wc_index_plus(graph, "degree")


def query_batch(rng, n, count=12):
    """Random queries including repeats (the cache-hit fodder) and
    off-level thresholds (the quantization fodder)."""
    queries = []
    for _ in range(count):
        w = rng.choice(
            (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0)
        )
        queries.append((rng.randrange(n), rng.randrange(n), w))
    # Repeat a prefix so later batches re-ask earlier questions.
    return queries + queries[: count // 2]


def mutate(rng, live, weighted):
    """One random journaled update batch (insert / delete / requality);
    returns True when anything was recorded."""
    graph = live.graph
    n = graph.num_vertices
    before = len(live.journal)
    for _ in range(rng.randint(1, 3)):
        choice = rng.random()
        edges = list(graph.edges())
        if choice < 0.4 and edges:
            edge = rng.choice(edges)
            live.delete_edge(edge[0], edge[1])
        elif choice < 0.7 and edges:
            edge = rng.choice(edges)
            live.change_quality(
                edge[0], edge[1], float(rng.randint(1, int(MAX_QUALITY)))
            )
        else:
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or graph.has_edge(u, v):
                continue
            quality = float(rng.randint(1, int(MAX_QUALITY)))
            if weighted:
                live.insert_edge(
                    u, v, quality, length=float(rng.randint(1, 5))
                )
            else:
                live.insert_edge(u, v, quality)
    return len(live.journal) > before


def assert_cached_equivalence(
    graph, seed, *, weighted=False, directed=False, entries=64
):
    """Interleave query rounds and update batches; every round the
    cached client must agree exactly with its uncached engine."""
    rng = random.Random(seed)
    live = live_index(graph)
    frozen = live.freeze()
    cache = AnswerCache(frozen, entries=entries)
    client = CachingClient(InProcessClient(frozen), cache)
    n = graph.num_vertices
    for _ in range(4):
        queries = query_batch(rng, n)
        assert client.distance_many(queries) == frozen.distance_many(
            queries
        )
        if not mutate(rng, live, weighted):
            continue
        journal = live.journal
        dirty = journal.dirty_vertices()
        if dirty:
            # The republish path QueryServer.swap_image drives: refreeze
            # against the old baseline, invalidate from the dirty set,
            # rebind keying to the new generation's engine.
            result = refreeze(frozen, live.index, dirty)
            frozen = result.engine
            cache.on_republish(
                engine=frozen,
                dirty=dirty,
                incremental=result.incremental,
            )
            client = CachingClient(InProcessClient(frozen), cache)
        journal.clear()
    # One final all-warm pass, checked against a from-scratch build of
    # the mutated graph: everything cached must still be exact.
    queries = query_batch(rng, n)
    client.distance_many(queries)
    oracle = fresh_build(
        live.graph, weighted=weighted, directed=directed
    ).distance_many(queries)
    assert client.distance_many(queries) == oracle


@settings(max_examples=15)
@given(quality_graphs(), st.integers(0, 2**20))
def test_undirected_cached_equivalence(graph, seed):
    assert_cached_equivalence(graph, seed)


@settings(max_examples=15)
@given(quality_graphs(), st.integers(0, 2**20))
def test_undirected_cached_equivalence_tiny_cache(graph, seed):
    # Capacity 2: eviction churns constantly, hits still must be exact.
    assert_cached_equivalence(graph, seed, entries=2)


@settings(max_examples=10)
@given(quality_digraphs(), st.integers(0, 2**20))
def test_directed_cached_equivalence(graph, seed):
    assert_cached_equivalence(graph, seed, directed=True)


@settings(max_examples=10)
@given(quality_weighted_graphs(), st.integers(0, 2**20))
def test_weighted_cached_equivalence(graph, seed):
    assert_cached_equivalence(graph, seed, weighted=True)
