"""Tests for the consolidated health reporting (serve/health.py)."""

import pytest

from repro.core import build_wc_index_plus
from repro.graph.generators import scale_free_network
from repro.serve import QueryServer, epoch_of
from repro.serve.health import closed_report, pool_report


@pytest.fixture(scope="module")
def frozen():
    network = scale_free_network(80, 3, num_qualities=4, seed=21)
    return build_wc_index_plus(network).freeze()


class TestEpochOf:
    def test_generation_suffix(self):
        assert epoch_of("wcindex-abc-g7") == 7

    def test_no_generation(self):
        assert epoch_of("psm_4f2a") is None


class TestReports:
    def test_closed_report_shape(self):
        report = closed_report(kernel="stdlib")
        assert report["state"] == "closed"
        assert report["alive"] == 0
        assert report["supervised"] is False
        assert report["workers"] == []

    def test_pool_report_counts_alive(self):
        workers = [
            {"slot": 0, "pid": 1, "alive": True, "exitcode": None},
            {"slot": 1, "pid": 2, "alive": False, "exitcode": -9},
        ]
        report = pool_report(
            segment="seg-g3", kernel="stdlib", workers=workers
        )
        assert report["alive"] == 1
        assert report["epoch"] == 3
        assert report["state"] == "ok"

    def test_degraded_state_wins(self):
        report = pool_report(
            segment="seg-g1",
            kernel="stdlib",
            workers=[{"slot": 0, "pid": 1, "alive": True, "exitcode": None}],
            supervised=True,
            degraded=True,
        )
        assert report["state"] == "degraded"

    def test_no_alive_workers_is_unavailable(self):
        report = pool_report(
            segment="seg-g1",
            kernel="stdlib",
            workers=[{"slot": 0, "pid": 1, "alive": False, "exitcode": 1}],
        )
        assert report["state"] == "unavailable"


class TestServerIntegration:
    def test_health_has_the_consolidated_shape(self, frozen):
        with QueryServer(frozen, workers=1) as server:
            report = server.health()
        for key in (
            "state",
            "supervised",
            "segment",
            "epoch",
            "kernel",
            "alive",
            "restarts",
            "workers",
        ):
            assert key in report
        assert report["alive"] == 1
        assert report["supervised"] is False

    def test_closed_server_reports_closed(self, frozen):
        server = QueryServer(frozen, workers=1)
        server.close()
        report = server.health()
        assert report["state"] == "closed"
        assert report["alive"] == 0

    def test_supervised_health_shares_the_shape(self, frozen):
        with QueryServer(frozen, workers=1, supervise=True) as server:
            report = server.health()
        assert report["supervised"] is True
        assert report["alive"] == 1
        assert isinstance(report["restarts"], int)
