"""Chaos suite: the serving stack under injected faults.

Every failure mode the robustness layer claims to absorb is exercised
here deterministically through :class:`repro.serve.FaultPlan` — worker
SIGKILLs mid-batch, delayed and dropped responses, corrupted and torn
images, publisher crashes between the image write and the swap — and
each test asserts the *recovery*, not just the failure: answers stay
bit-identical, errors are the typed ones, half-published images roll
back to a loadable state.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from tests.serve.test_shm import segment_exists

from repro.core import build_wc_index_plus, load_frozen, save_frozen
from repro.core.serialize import IndexFormatError
from repro.graph.generators import scale_free_network
from repro.live import (
    LivePublisher,
    STATE_COMMITTED,
    STATE_PUBLISHING,
    live_index,
    read_manifest,
    recover_publish,
)
from repro.serve import (
    FaultPlan,
    InjectedCrash,
    NO_FAULTS,
    PoolUnavailableError,
    QueryServer,
    QueryTimeoutError,
    ShmIndexImage,
    flip_bit_in_section,
    recover_segments,
    section_span,
    truncate_at_section,
)
from repro.workloads.queries import random_queries


@pytest.fixture(scope="module")
def network():
    return scale_free_network(80, 3, num_qualities=4, seed=13)


@pytest.fixture(scope="module")
def frozen(network):
    return build_wc_index_plus(network).freeze()


@pytest.fixture(scope="module")
def workload(network):
    return list(random_queries(network, 150, seed=7))


@pytest.fixture(scope="module")
def expected(frozen, workload):
    return frozen.distance_many(workload)


def kill_worker(server, slot=0):
    os.kill(server.worker_states()[slot]["pid"], signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not server.worker_states()[slot]["alive"]:
            return
        time.sleep(0.01)
    raise AssertionError("killed worker still reported alive")


class TestFaultPlan:
    def test_default_plan_is_noop(self):
        assert NO_FAULTS.is_noop()
        assert FaultPlan().is_noop()
        assert not FaultPlan(kill_after={0: 1}).is_noop()
        assert not FaultPlan(fail_republish_at=1).is_noop()

    def test_plan_is_immutable(self):
        with pytest.raises(AttributeError):
            NO_FAULTS.fail_republish_at = 3


class TestImageCorruption:
    """The loaders must reject damaged images and name the section."""

    @pytest.fixture(scope="class")
    def image(self, frozen, tmp_path_factory):
        path = tmp_path_factory.mktemp("img") / "net.wcxb"
        save_frozen(frozen, path)
        return path.read_bytes()

    def test_section_span_unknown_name(self, image):
        with pytest.raises(ValueError, match="sections:"):
            section_span(image, "nope")

    def test_truncation_names_the_section(self, image, tmp_path):
        import io

        torn = truncate_at_section(image, "dists", keep=8)
        with pytest.raises(IndexFormatError, match="'dists'"):
            load_frozen(io.BytesIO(torn), validate=True)

    def test_bit_flip_is_caught_by_validation(self, image):
        import io

        # A high bit in a hub id pushes the rank out of range: only the
        # integrity scan can see it (sizes and offsets stay consistent).
        bad = flip_bit_in_section(image, "hubs", byte=0, bit=7)
        with pytest.raises(IndexFormatError, match="hub rank"):
            load_frozen(io.BytesIO(bad), validate=True)
        bad = flip_bit_in_section(image, "offsets", byte=8, bit=7)
        with pytest.raises(IndexFormatError, match="offset table"):
            load_frozen(io.BytesIO(bad), validate=True)

    def test_corrupt_image_refused_at_publish(self, image, tmp_path):
        path = tmp_path / "bad.wcxb"
        path.write_bytes(flip_bit_in_section(image, "hubs", byte=0, bit=7))
        with pytest.raises(IndexFormatError):
            ShmIndexImage(path)


class TestKillRecovery:
    def test_sigkill_mid_batch_is_invisible(self, frozen, workload, expected):
        """A worker SIGKILLed upon receiving a chunk: the chunk reroutes
        and the batch still answers bit-identically."""
        plan = FaultPlan(kill_after={0: 1})
        with QueryServer(frozen, workers=3, fault_plan=plan) as server:
            assert server.query_batch(workload, timeout=10.0) == expected
            assert not server.worker_states()[0]["alive"]

    def test_supervisor_restores_pool_bit_identical(
        self, frozen, workload, expected
    ):
        with QueryServer(frozen, workers=3, supervise=True) as server:
            assert server.query_batch(workload) == expected
            kill_worker(server, 0)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server.worker_states()[0]["alive"]:
                    break
                time.sleep(0.01)
            assert server.query_batch(workload, timeout=10.0) == expected
            health = server.health()
            assert health["state"] == "ok"
            assert health["restarts"] >= 1
            assert health["alive"] == 3
            assert health["workers"][0]["restarts"] >= 1

    def test_acceptance_sustained_kills_zero_client_errors(
        self, frozen, network
    ):
        """The ISSUE's acceptance run, miniaturized in per-batch size but
        not in structure: a FaultPlan kills a worker every 50 batches
        across a 2,000-batch workload; the supervised 4-worker pool
        answers every batch bit-identically and health() counts every
        restart.
        """
        queries = list(random_queries(network, 12, seed=19))
        expected = frozen.distance_many(queries)
        # 4 workers x 4 chunks is capped by the 12-query batch: with 12
        # chunks round-robinned, slot 0 gets 3 jobs per batch.
        plan = FaultPlan(kill_after={0: 3 * 50})
        with QueryServer(
            frozen,
            workers=4,
            supervise=True,
            # The breaker and the backoff are opened wide on purpose:
            # this run *wants* every death respawned instantly so the
            # kill schedule actually lands ~40 times (production
            # defaults would park the chronically dying slot in
            # backoff, trading restarts for capacity).
            supervisor_options={
                "max_restarts": 500,
                "restart_window": 3600.0,
                "backoff_base": 0.0,
                "backoff_reset": 0.05,
            },
            fault_plan=plan,
        ) as server:
            for batch in range(2000):
                assert (
                    server.query_batch(queries, timeout=10.0, retries=4)
                    == expected
                ), f"batch {batch} diverged"
            health = server.health()
            assert health["state"] == "ok"
            assert health["restarts"] >= 30
            assert health["restarts"] == server.supervisor.total_restarts

    def test_unsupervised_pool_degrades(self, frozen, workload):
        """The same kill schedule without a supervisor: the pool loses
        workers for good and ends unavailable — the contrast the
        supervisor exists for."""
        plan = FaultPlan(kill_after={slot: 1 for slot in range(2)})
        with QueryServer(frozen, workers=2, fault_plan=plan) as server:
            with pytest.raises(PoolUnavailableError):
                for _ in range(50):
                    server.query_batch(workload, timeout=5.0)
            assert server.health()["state"] == "unavailable"
            assert all(
                not state["alive"] for state in server.worker_states()
            )


class TestDeadlinesAndRetries:
    def test_dropped_responses_are_retried(self, frozen, workload, expected):
        plan = FaultPlan(drop_first={0: 2})
        with QueryServer(frozen, workers=2, fault_plan=plan) as server:
            got = server.query_batch(workload, timeout=0.5, retries=4)
            assert got == expected

    def test_delayed_worker_times_out_typed(self, frozen, workload):
        plan = FaultPlan(delay_seconds={0: 30.0, 1: 30.0})
        with QueryServer(frozen, workers=2, fault_plan=plan) as server:
            with pytest.raises(QueryTimeoutError, match="deadline"):
                server.query_batch(workload, timeout=0.2, retries=0)

    def test_timeout_error_is_a_runtime_error(self, frozen, workload):
        plan = FaultPlan(delay_seconds={0: 30.0})
        with QueryServer(frozen, workers=1, fault_plan=plan) as server:
            with pytest.raises(RuntimeError):
                server.query_batch(workload, timeout=0.2, retries=0)

    def test_fallback_answers_when_pool_times_out(
        self, frozen, workload, expected
    ):
        plan = FaultPlan(delay_seconds={0: 30.0})
        with QueryServer(
            frozen, workers=1, fault_plan=plan, fallback=True
        ) as server:
            got = server.query_batch(workload, timeout=0.2, retries=0)
            assert got == expected

    def test_all_dead_pool_fails_fast_even_unsupervised(
        self, frozen, workload
    ):
        with QueryServer(frozen, workers=2) as server:
            for state in server.worker_states():
                os.kill(state["pid"], signal.SIGKILL)
            time.sleep(0.2)
            started = time.monotonic()
            with pytest.raises(
                PoolUnavailableError, match="no live query workers"
            ):
                server.query_batch(workload)
            assert time.monotonic() - started < 2.0

    def test_all_dead_pool_falls_back_when_enabled(
        self, frozen, workload, expected
    ):
        with QueryServer(frozen, workers=2, fallback=True) as server:
            for state in server.worker_states():
                os.kill(state["pid"], signal.SIGKILL)
            time.sleep(0.2)
            assert server.query_batch(workload) == expected


class TestPublisherCrashRecovery:
    @pytest.fixture
    def net(self):
        return scale_free_network(40, 2, num_qualities=3, seed=5)

    def missing_edge(self, graph):
        for u in graph.vertices():
            for v in graph.vertices():
                if u < v and not graph.has_edge(u, v):
                    return u, v
        raise AssertionError("graph is complete")

    def test_injected_crash_leaves_publishing_manifest(self, net, tmp_path):
        image = tmp_path / "live.wcxb"
        plan = FaultPlan(fail_republish_at=1)
        publisher = LivePublisher(
            live_index(net),
            workers=2,
            image_path=image,
            image_mode="delta",
            fault_plan=plan,
            segment_prefix="wcxchaosA",
        )
        try:
            u, v = self.missing_edge(net)
            with pytest.raises(InjectedCrash):
                publisher.apply([("insert", u, v, 9.0, None)])
            manifest = read_manifest(image)
            assert manifest["state"] == STATE_PUBLISHING
            assert manifest["epoch"] == 1
            # The crash hit before the swap: the pool still serves 0.
            assert publisher.segment_name.endswith("g0")
        finally:
            publisher.close()
        report = recover_publish(image)
        assert report.recovered
        assert read_manifest(image)["state"] == STATE_COMMITTED
        load_frozen(image, validate=True)

    def test_torn_delta_rolls_back_to_last_consistent_image(
        self, net, tmp_path
    ):
        image = tmp_path / "live.wcxb"
        publisher = LivePublisher(
            live_index(net),
            workers=2,
            image_path=image,
            image_mode="delta",
            segment_prefix="wcxchaosB",
        )
        try:
            u, v = self.missing_edge(net)
            publisher.apply([("insert", u, v, 9.0, None)])
        finally:
            publisher.close()
        good_engine = load_frozen(image, validate=True)
        good_size = image.stat().st_size

        # Tear the appended delta blob mid-write and fake a publish that
        # died there: the manifest still says "publishing".
        data = image.read_bytes()
        image.write_bytes(data[:-16])
        manifest = read_manifest(image)
        from repro.live import write_manifest

        write_manifest(image, {**manifest, "state": STATE_PUBLISHING})
        with pytest.raises(IndexFormatError, match="delta"):
            load_frozen(image, validate=True)

        report = recover_publish(image)
        assert report.action == "rolled_back"
        assert report.truncated_to is not None
        assert report.truncated_to < good_size
        recovered = load_frozen(image, validate=True)
        assert read_manifest(image)["state"] == STATE_COMMITTED
        # The rolled-back image is a *previous* consistent generation.
        assert recovered.num_vertices == good_engine.num_vertices

    def test_publisher_restart_auto_recovers(self, net, tmp_path):
        image = tmp_path / "live.wcxb"
        plan = FaultPlan(fail_republish_at=1)
        publisher = LivePublisher(
            live_index(net),
            workers=1,
            image_path=image,
            image_mode="delta",
            fault_plan=plan,
            segment_prefix="wcxchaosC",
        )
        u, v = self.missing_edge(net)
        with pytest.raises(InjectedCrash):
            publisher.apply([("insert", u, v, 9.0, None)])
        publisher.close()

        restarted = LivePublisher(
            live_index(net),
            workers=1,
            image_path=image,
            segment_prefix="wcxchaosD",
        )
        try:
            assert restarted.recovered is not None
            assert restarted.recovered.action in ("finished", "rolled_back")
            assert read_manifest(image)["state"] == STATE_COMMITTED
        finally:
            restarted.close()

    def test_unfaulted_publish_commits_manifest(self, net, tmp_path):
        image = tmp_path / "live.wcxb"
        with LivePublisher(
            live_index(net),
            workers=1,
            image_path=image,
            segment_prefix="wcxchaosE",
        ) as publisher:
            u, v = self.missing_edge(net)
            publisher.apply([("insert", u, v, 9.0, None)])
            manifest = read_manifest(image)
            assert manifest["state"] == STATE_COMMITTED
            assert manifest["epoch"] == 1
            assert manifest["pid"] == os.getpid()


class TestSegmentRecovery:
    def test_dead_process_segments_are_swept(self, frozen, tmp_path):
        """A subprocess publishes default-named segments and dies
        without cleanup; recover_segments() reaps them."""
        image = tmp_path / "seg.wcxb"
        save_frozen(frozen, image)
        # A plain crash lets the child's resource_tracker unlink the
        # segment — the orphan case is the tracker dying *with* the
        # process (OOM killer, SIGKILL of the group, power loss), so
        # the child forgets its registration before dying.
        script = (
            "import os, sys\n"
            "from multiprocessing import resource_tracker\n"
            "from repro.serve import ShmIndexImage\n"
            "image = ShmIndexImage(sys.argv[1], "
            "name=f'wcx{os.getpid()}i0g0', validate=False)\n"
            "resource_tracker.unregister("
            "image._shm._name, 'shared_memory')\n"
            "print(image.name, flush=True)\n"
            "os._exit(1)\n"  # die without destroy(): the orphan case
        )
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        out = subprocess.run(
            [sys.executable, "-c", script, str(image)],
            capture_output=True,
            text=True,
            env=env,
        )
        name = out.stdout.strip()
        assert name, out.stderr
        assert segment_exists(name)
        removed = recover_segments()
        assert name in removed
        assert not segment_exists(name)

    def test_live_publisher_segments_survive_the_sweep(self, frozen):
        """Our own (live-pid) segments must never be reaped."""
        with QueryServer(
            frozen, workers=1, segment_name=f"wcx{os.getpid()}i999g0"
        ) as server:
            removed = recover_segments()
            assert server.image_name not in removed
            assert segment_exists(server.image_name)

    def test_prefix_sweep_respects_live_owner(self, frozen):
        image = ShmIndexImage(frozen, name="wcxprefixtestg0")
        try:
            assert (
                recover_segments("wcxprefixtest", owner_pid=os.getpid())
                == []
            )
            assert segment_exists(image.name)
        finally:
            image.destroy()
        assert recover_segments("wcxprefixtest", owner_pid=1 << 30) == []


class TestShmDoubleClose:
    def test_destroy_idempotent_against_external_unlink(self, frozen):
        """Regression: a segment unlinked externally (a sweeping
        supervisor) must not make the creator's destroy raise — and a
        double close must stay silent."""
        image = ShmIndexImage(frozen, name="wcxdoubleclose")
        # An external sweep unlinks the segment behind the creator's back.
        from repro.serve.shm import _open_untracked

        other = _open_untracked(image.name)
        other.unlink()
        other.close()
        image.destroy()  # must not raise
        image.destroy()  # double close: no-op
        image.close()  # alias: still a no-op
        assert not segment_exists("wcxdoubleclose")

    def test_close_is_destroy(self, frozen):
        image = ShmIndexImage(frozen, name="wcxclosealias")
        image.close()
        assert not segment_exists("wcxclosealias")
        image.close()
