"""Tests for the rolling-window serving stats."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.stats import (
    BatchSizeHistogram,
    LatencyWindow,
    ServerStats,
    percentile,
)


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50.0))

    def test_single_sample(self):
        for p in (0.0, 50.0, 99.0, 100.0):
            assert percentile([7.0], p) == 7.0

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50.0) == 50.0
        assert percentile(samples, 95.0) == 95.0
        assert percentile(samples, 99.0) == 99.0
        assert percentile(samples, 100.0) == 100.0

    def test_monotone_in_p(self):
        samples = sorted([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        values = [percentile(samples, p) for p in (10, 50, 90, 99)]
        assert values == sorted(values)

    def test_empty_is_nan_for_every_p(self):
        # The documented sentinel: no traffic has no latency, and the
        # nan must not depend on which percentile was asked for.
        for p in (0.0, 50.0, 99.0, 100.0):
            assert math.isnan(percentile([], p))

    def test_p_zero_of_single_sample(self):
        assert percentile([7.0], 0.0) == 7.0

    def test_out_of_range_p_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], -0.1)


class TestLatencyWindow:
    def test_snapshot_shape(self):
        window = LatencyWindow()
        for ms in (1.0, 2.0, 3.0):
            window.observe(ms / 1e3)
        snap = window.snapshot()
        assert snap["count"] == 3
        assert snap["mean_ms"] == 2.0
        assert snap["p50_ms"] == 2.0
        assert snap["p99_ms"] == 3.0

    def test_time_window_prunes(self):
        window = LatencyWindow(window_seconds=10.0)
        window.observe(0.001, now=0.0)
        window.observe(0.002, now=11.0)
        snap = window.snapshot(now=11.0)
        assert snap["count"] == 1
        assert snap["p50_ms"] == 2.0

    def test_bounded_samples(self):
        window = LatencyWindow(max_samples=16)
        for i in range(100):
            window.observe(float(i))
        assert window.snapshot()["count"] == 16

    def test_empty_window_snapshots_nan_sentinels(self):
        snap = LatencyWindow().snapshot()
        assert snap["count"] == 0
        for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
            assert math.isnan(snap[key])

    def test_single_sample_is_every_percentile(self):
        window = LatencyWindow()
        window.observe(0.004)
        snap = window.snapshot()
        assert snap["count"] == 1
        assert snap["mean_ms"] == snap["p50_ms"] == snap["p99_ms"] == 4.0

    def test_aged_out_window_returns_to_sentinels(self):
        window = LatencyWindow(window_seconds=5.0)
        window.observe(0.001, now=0.0)
        snap = window.snapshot(now=60.0)
        assert snap["count"] == 0
        assert math.isnan(snap["p99_ms"])


class TestBatchSizeHistogram:
    def test_power_of_two_buckets(self):
        hist = BatchSizeHistogram()
        for size in (1, 2, 3, 64, 128):
            hist.observe(size)
        snap = hist.snapshot()
        assert snap["batches"] == 5
        assert snap["mean_size"] == (1 + 2 + 3 + 64 + 128) / 5
        assert snap["buckets"] == {
            "<=1": 1,
            "<=2": 1,
            "<=4": 1,
            "<=64": 1,
            "<=128": 1,
        }


class TestServerStats:
    def test_zero_silent_drops_invariant(self):
        stats = ServerStats()
        stats.admit(10)
        stats.answer(4, 0.001)
        stats.fail(2)
        snap = stats.snapshot()
        queries = snap["queries"]
        assert queries["admitted"] == 10
        assert (
            queries["answered"] + queries["failed"] + snap["queue_depth"]
            == queries["admitted"]
        )

    def test_shed_is_not_admitted(self):
        stats = ServerStats()
        stats.admit(1)
        stats.shed(5)
        snap = stats.snapshot()
        assert snap["queries"]["shed"] == 5
        assert snap["queries"]["admitted"] == 1
        assert stats.in_flight == 1

    def test_connections_tracked(self):
        stats = ServerStats()
        stats.connection_opened()
        stats.connection_opened()
        stats.connection_closed()
        assert stats.connections == 1
        assert stats.snapshot()["connections"] == 1

    def test_counters_land_on_the_shared_registry(self):
        registry = MetricsRegistry()
        stats = ServerStats(registry=registry)
        stats.admit(3)
        stats.answer(2, 0.001)
        stats.fail(1)
        stats.shed(7)
        stats.connection_opened()
        snap = registry.snapshot()
        assert snap["repro_queries_admitted_total"] == 3
        assert snap["repro_queries_answered_total"] == 2
        assert snap["repro_queries_failed_total"] == 1
        assert snap["repro_queries_shed_total"] == 7
        assert snap["repro_queue_depth"] == 0
        assert snap["repro_connections"] == 1
        assert snap["repro_request_latency_seconds_count"] == 1
        assert snap["repro_batch_size_count"] == 0

    def test_batch_sizes_mirror_into_the_registry_histogram(self):
        registry = MetricsRegistry()
        stats = ServerStats(registry=registry)
        stats.batch_sizes.observe(3)
        stats.batch_sizes.observe(100)
        snap = registry.snapshot()
        assert snap["repro_batch_size_count"] == 2
        assert snap["repro_batch_size_sum"] == 103
        # Window view and cumulative view agree on the count.
        assert stats.snapshot()["batch_sizes"]["batches"] == 2
