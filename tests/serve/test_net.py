"""Tests for the asyncio TCP front door and its blocking client."""

import socket
import struct
import threading
import time

import pytest

from repro.core import (
    DirectedWCIndex,
    WeightedWCIndex,
    build_wc_index_plus,
)
from repro.graph.generators import (
    oriented_copy,
    scale_free_network,
    with_random_lengths,
)
from repro.serve import (
    InProcessClient,
    NetClient,
    NetServerThread,
    QueryServer,
    ServerOverloadedError,
)
from repro.serve import protocol
from repro.serve.client import PoolClient
from repro.serve.errors import ServeError
from repro.serve.net import NetServer
from repro.workloads.queries import random_queries

INF = float("inf")


@pytest.fixture(scope="module")
def network():
    return scale_free_network(120, 3, num_qualities=5, seed=9)


@pytest.fixture(scope="module")
def frozen(network):
    return build_wc_index_plus(network).freeze()


@pytest.fixture(scope="module")
def workload(network):
    return list(random_queries(network, 300, seed=2))


@pytest.fixture(scope="module")
def front(frozen):
    with NetServerThread(InProcessClient(frozen)) as server:
        yield server


@pytest.fixture()
def client(front):
    with NetClient(*front.address) as c:
        yield c


class TestBitIdentity:
    def test_undirected(self, client, frozen, workload):
        assert client.distance_many(workload) == frozen.distance_many(workload)

    def test_single_query(self, client, frozen, workload):
        s, t, w = workload[0]
        assert client.distance(s, t, w) == frozen.distance(s, t, w)

    def test_empty_batch(self, client):
        assert client.distance_many([]) == []

    @pytest.mark.parametrize("family", ["directed", "weighted"])
    def test_extension_families(self, network, family):
        if family == "directed":
            graph = oriented_copy(network, seed=4)
            engine = DirectedWCIndex(graph).freeze()
        else:
            graph = with_random_lengths(network, seed=4)
            engine = WeightedWCIndex(graph).freeze()
        queries = list(random_queries(graph, 150, seed=5))
        with NetServerThread(InProcessClient(engine)) as front:
            with NetClient(*front.address) as client:
                assert client.distance_many(queries) == engine.distance_many(
                    queries
                )

    def test_error_messages_bit_identical(self, client, frozen):
        bad = (0, 10**6, 1.0)
        with pytest.raises(ValueError) as engine_err:
            frozen.distance_many([bad])
        with pytest.raises(ValueError) as net_err:
            client.distance_many([bad])
        assert str(net_err.value) == str(engine_err.value)

    def test_failure_isolated_to_offending_request(self, front, frozen):
        # Two pipelined requests on one connection: only the malformed
        # one fails; the other is answered (no silent drop, and the
        # connection survives to serve the follow-up call).
        with NetClient(*front.address) as client:
            with pytest.raises(ValueError):
                client.distance_many([(0, 10**6, 1.0)])
            good = [(0, 1, 2.0), (3, 4, 1.0)]
            assert client.distance_many(good) == frozen.distance_many(good)

    def test_large_batch_chunks_over_frame_cap(self, frozen, workload):
        big = (workload * ((protocol.MAX_QUERIES_PER_FRAME // len(workload)) + 1))
        assert len(big) > protocol.MAX_QUERIES_PER_FRAME
        # Admission counts queries, so the budget must cover the whole
        # pipelined batch (both wire chunks in flight at once).
        with NetServerThread(
            InProcessClient(frozen), max_inflight=2 * len(big)
        ) as front:
            with NetClient(*front.address) as client:
                assert client.distance_many(big) == frozen.distance_many(big)


class TestMicroBatching:
    def test_concurrent_clients_coalesce(self, frozen, workload):
        with NetServerThread(
            InProcessClient(frozen), max_batch=64, max_wait_us=2000.0
        ) as front:
            expected = frozen.distance_many(workload)
            results = {}

            def drive(slot):
                with NetClient(*front.address) as client:
                    answers = []
                    for query in workload:
                        answers.extend(client.distance_many([query]))
                    results[slot] = answers

            threads = [
                threading.Thread(target=drive, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            report = front.health_report()
        assert all(results[i] == expected for i in range(8))
        batches = report["batch_sizes"]
        # 8 clients × len(workload) single-query requests answered in
        # fewer backend calls than requests: coalescing happened.
        assert batches["batches"] < 8 * len(workload)
        assert batches["mean_size"] > 1.0
        assert report["queries"]["answered"] == 8 * len(workload)

    def test_per_request_dispatch_mode(self, frozen, workload):
        # max_batch=1 disables cross-request coalescing: single-query
        # requests reach the backend one at a time.
        with NetServerThread(InProcessClient(frozen), max_batch=1) as front:
            with NetClient(*front.address) as client:
                for query in workload[:20]:
                    assert client.distance_many([query]) == (
                        frozen.distance_many([query])
                    )
            report = front.health_report()
        assert report["batch_sizes"]["mean_size"] == 1.0


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self, frozen):
        release = threading.Event()

        class Gated:
            def distance_many(self, queries):
                release.wait(5.0)
                return frozen.distance_many(queries)

        with NetServerThread(
            InProcessClient(Gated()), max_batch=4, max_inflight=4
        ) as front:
            filler = NetClient(*front.address)
            prober = NetClient(*front.address)
            try:
                # Fill the budget with queries parked behind the gate...
                errors = []

                def fill():
                    try:
                        filler.distance_many([(0, 1, 1.0)] * 4)
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)

                t = threading.Thread(target=fill)
                t.start()
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    if front.server.stats.in_flight >= 4:
                        break
                    time.sleep(0.01)
                # ... the next admission must be refused, typed.
                with pytest.raises(ServerOverloadedError) as excinfo:
                    prober.distance_many([(0, 1, 1.0)])
                assert "in flight" in str(excinfo.value)
                release.set()
                t.join()
                assert not errors
                # The shed shows up in the stats, and nothing vanished.
                snapshot = front.health_report()["queries"]
                assert snapshot["shed"] >= 1
                assert snapshot["admitted"] == snapshot["answered"]
            finally:
                release.set()
                filler.close()
                prober.close()

    def test_recovers_after_shed(self, frozen, workload):
        # A shed connection keeps working for later requests.
        with NetServerThread(
            InProcessClient(frozen), max_inflight=1
        ) as front:
            with NetClient(*front.address) as client:
                subset = workload[:10]
                for query in subset:
                    assert client.distance_many([query]) == (
                        frozen.distance_many([query])
                    )


class TestHealth:
    def test_health_frame(self, client):
        report = client.health()
        assert report["state"] == "ok"
        assert report["transport"] == "net"
        assert report["protocol_version"] == protocol.PROTOCOL_VERSION
        for key in ("queries", "latency", "batch_sizes", "queue_depth"):
            assert key in report
        assert report["backend"]["transport"] == "in-process"

    def test_latency_percentiles_populate(self, frozen, workload):
        with NetServerThread(InProcessClient(frozen)) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload[:50])
                latency = client.health()["latency"]
        assert latency["count"] >= 1
        for key in ("p50_ms", "p95_ms", "p99_ms"):
            assert float(latency[key]) >= 0.0

    def test_pool_backend_health_travels_over_the_wire(self, frozen):
        with QueryServer(frozen, workers=1) as pool:
            with NetServerThread(PoolClient(pool)) as front:
                with NetClient(*front.address) as client:
                    report = client.health()
        backend = report["backend"]
        assert backend["transport"] == "pool"
        assert backend["alive"] == 1

    def test_hello_carries_server_identity(self, client):
        assert client.server_info["protocol"] == protocol.PROTOCOL_VERSION
        assert client.server_info["server"] == "repro-netserver"


class TestProtocolViolations:
    def _raw(self, front):
        sock = socket.create_connection(front.address, timeout=5.0)
        sock.settimeout(5.0)
        return sock

    def _frames(self, sock):
        decoder = protocol.FrameDecoder()
        frames = []
        try:
            while not frames:
                data = sock.recv(65536)
                if not data:
                    break
                frames.extend(decoder.feed(data))
        except socket.timeout:
            pass
        return frames

    def test_version_mismatch_answered_with_typed_error(self, front):
        with self._raw(front) as sock:
            sock.sendall(protocol.encode_frame(protocol.MSG_HELLO, b"{}", version=9))
            frames = self._frames(sock)
        assert frames and frames[0].msg_type == protocol.MSG_ERROR
        request_id, code, message = protocol.decode_error(frames[0].payload)
        assert request_id == protocol.CONNECTION_SCOPE
        assert code == protocol.ERR_VERSION
        assert "version 9" in message

    def test_garbage_bytes_answered_with_typed_error(self, front):
        with self._raw(front) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
            frames = self._frames(sock)
        assert frames and frames[0].msg_type == protocol.MSG_ERROR
        _, code, _ = protocol.decode_error(frames[0].payload)
        assert code == protocol.ERR_MALFORMED

    def test_hostile_declared_size_refused(self, front):
        header = struct.pack(
            "!HBBI",
            protocol.MAGIC,
            protocol.PROTOCOL_VERSION,
            protocol.MSG_QUERY,
            protocol.MAX_PAYLOAD_BYTES + 1,
        )
        with self._raw(front) as sock:
            sock.sendall(header)
            frames = self._frames(sock)
        assert frames and frames[0].msg_type == protocol.MSG_ERROR
        _, code, _ = protocol.decode_error(frames[0].payload)
        assert code == protocol.ERR_TOO_LARGE

    def test_malformed_query_payload_fails_that_request_only(self, front):
        # A QUERY frame whose declared count disagrees with its bytes:
        # the request id is still recoverable, so the refusal is
        # request-scoped and the connection survives.
        bad_payload = struct.pack("!II", 42, 5) + struct.pack("!qqd", 0, 1, 2.0)
        with self._raw(front) as sock:
            sock.sendall(
                protocol.encode_frame(protocol.MSG_QUERY, bad_payload)
            )
            frames = self._frames(sock)
            request_id, code, _ = protocol.decode_error(frames[0].payload)
            assert request_id == 42
            assert code == protocol.ERR_MALFORMED
            # Connection still answers a well-formed request.
            sock.sendall(protocol.encode_query(43, [(0, 1, 2.0)]))
            frames = self._frames(sock)
        assert frames and frames[0].msg_type == protocol.MSG_ANSWER
        assert protocol.decode_answer(frames[0].payload)[0] == 43


class TestShutdown:
    def test_shutdown_fails_parked_requests_with_typed_error(self, frozen):
        release = threading.Event()

        class Gated:
            def distance_many(self, queries):
                release.wait(5.0)
                return frozen.distance_many(queries)

        front = NetServerThread(InProcessClient(Gated()), max_batch=1)
        front.start()
        client = NetClient(*front.address, timeout=10.0)
        outcome = []

        def drive():
            try:
                outcome.append(client.distance_many([(0, 1, 1.0)] * 2))
            except Exception as exc:  # noqa: BLE001
                outcome.append(exc)

        t = threading.Thread(target=drive)
        t.start()
        deadline = time.time() + 5.0
        while time.time() < deadline and front.server.stats.in_flight < 2:
            time.sleep(0.01)
        try:
            # Stop with requests still parked: each must come back as a
            # typed error (or, for the one already executing when the
            # gate lifts, an answer) — never a silent drop.
            release.set()
            front.stop()
            t.join(timeout=10.0)
            assert outcome, "request vanished at shutdown"
            result = outcome[0]
            assert isinstance(result, (list, ServeError, OSError))
        finally:
            release.set()
            client.close()

    def test_stop_is_idempotent_and_frees_the_port(self, frozen):
        front = NetServerThread(InProcessClient(frozen))
        host, port = front.start()
        front.stop()
        front.stop()
        # The port is released: a fresh server can bind it.
        probe = socket.socket()
        try:
            probe.bind((host, port))
        finally:
            probe.close()

    def test_server_refuses_after_stop(self, frozen):
        front = NetServerThread(InProcessClient(frozen))
        front.start()
        address = front.address
        front.stop()
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=0.5).close()


class TestNetServerValidation:
    def test_rejects_bad_options(self, frozen):
        backend = InProcessClient(frozen)
        with pytest.raises(ValueError):
            NetServer(backend, max_batch=0)
        with pytest.raises(ValueError):
            NetServer(backend, max_wait_us=-1.0)
        with pytest.raises(ValueError):
            NetServer(backend, max_inflight=0)

    def test_startup_error_surfaces_in_start(self, frozen):
        # Binding a port that is already taken must raise in start(),
        # in the caller's thread.
        with NetServerThread(InProcessClient(frozen)) as front:
            host, port = front.address
            clash = NetServerThread(
                InProcessClient(frozen), host=host, port=port
            )
            with pytest.raises(OSError):
                clash.start()
