"""Tests for shared-memory index images (publish / attach / cleanup)."""

import pytest

from tests.helpers import random_graph

from repro.core import (
    DirectedWCIndex,
    WeightedWCIndex,
    build_wc_index_plus,
    save_frozen,
    save_index,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import paper_figure3
from repro.graph.weighted import WeightedGraph
from repro.serve import ShmIndexImage, attach_image
from repro.workloads.queries import random_queries


def segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestShmIndexImage:
    def test_publish_attach_answers_match(self):
        g = random_graph(5)
        index = build_wc_index_plus(g, "degree")
        frozen = index.freeze()
        workload = list(random_queries(g, 100, seed=1))
        with ShmIndexImage(frozen) as image:
            with attach_image(image.name) as attached:
                assert (
                    attached.engine.distance_many(workload)
                    == frozen.distance_many(workload)
                )

    def test_accepts_list_engine_and_all_families(self):
        digraph = DiGraph(4, [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0)])
        wgraph = WeightedGraph(
            3, [(0, 1, 2.0, 3.0), (1, 2, 1.5, 1.0)]
        )
        for index in (
            build_wc_index_plus(paper_figure3(), "identity"),
            DirectedWCIndex(digraph),
            WeightedWCIndex(wgraph),
        ):
            frozen = index.freeze()
            with ShmIndexImage(index) as image:
                with attach_image(image.name) as attached:
                    assert type(attached.engine) is type(frozen)
                    assert (
                        attached.engine.entry_count() == frozen.entry_count()
                    )

    def test_publish_from_wcxb_path(self, tmp_path):
        index = build_wc_index_plus(paper_figure3(), "identity")
        path = tmp_path / "net.wcxb"
        save_frozen(index, path)
        with ShmIndexImage(str(path)) as image:
            assert image.size == path.stat().st_size
            with attach_image(image.name) as attached:
                assert attached.engine.entry_count() == index.entry_count()

    def test_publishing_a_corrupt_path_fails_loudly(self, tmp_path):
        # Regression: the v3 fast path used to publish the file bytes
        # verbatim, and attachers never validate — a bit-flipped image
        # that load_frozen rejects was silently served.
        import struct

        from tests.core.test_serialize import section_offset

        from repro.core import IndexFormatError

        index = build_wc_index_plus(paper_figure3(), "identity")
        path = tmp_path / "net.wcxb"
        save_frozen(index, path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<i", data, section_offset(data, "hubs"), 99)
        path.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="hub rank"):
            ShmIndexImage(str(path))
        # Trusted images can still opt out of the publish-time scan.
        with ShmIndexImage(str(path), validate=False) as image:
            with attach_image(image.name) as attached:
                assert attached.engine.entry_count() == index.entry_count()

    def test_publish_from_text_path_normalizes(self, tmp_path):
        # A text index (and, by the same normalization, legacy binary
        # versions) is converted to the attachable v3 layout on publish.
        index = build_wc_index_plus(paper_figure3(), "identity")
        path = tmp_path / "net.wci"
        save_index(index, path)
        with ShmIndexImage(str(path)) as image:
            with attach_image(image.name) as attached:
                for v in range(index.num_vertices):
                    assert (
                        attached.engine.entries_of(v) == index.entries_of(v)
                    )

    def test_attach_engine_in_process(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        with ShmIndexImage(index) as image:
            engine = image.attach_engine()
            assert engine.entry_count() == index.entry_count()
            engine.release()

    def test_destroy_unlinks_the_segment(self):
        image = ShmIndexImage(build_wc_index_plus(paper_figure3()))
        name = image.name
        assert segment_exists(name)
        image.destroy()
        assert not segment_exists(name)
        image.destroy()  # idempotent
        with pytest.raises(ValueError, match="destroyed"):
            image.attach_engine()

    def test_attached_close_is_idempotent(self):
        with ShmIndexImage(build_wc_index_plus(paper_figure3())) as image:
            attached = attach_image(image.name)
            attached.close()
            attached.close()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(FileNotFoundError):
            attach_image("wcindex-no-such-segment")

    def test_destroy_unlinks_even_with_an_unreleased_engine(self):
        # Regression: destroy() used to close before unlinking, so the
        # BufferError raised for an unreleased attach_engine view
        # skipped the unlink and leaked the segment permanently.
        image = ShmIndexImage(build_wc_index_plus(paper_figure3()))
        name = image.name
        engine = image.attach_engine()
        with pytest.raises(BufferError):
            image.destroy()
        assert not segment_exists(name)
        # Releasing the views and retrying finishes the close cleanly.
        engine.release()
        image.destroy()
