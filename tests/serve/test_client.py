"""Tests for the unified QueryClient API over its three transports."""

import pytest

from repro.core import build_wc_index_plus
from repro.graph.generators import scale_free_network
from repro.serve import (
    InProcessClient,
    NetClient,
    NetServerThread,
    QueryServer,
)
from repro.serve.client import PoolClient, QueryClient
from repro.workloads.queries import random_queries


@pytest.fixture(scope="module")
def network():
    return scale_free_network(100, 3, num_qualities=4, seed=11)


@pytest.fixture(scope="module")
def frozen(network):
    return build_wc_index_plus(network).freeze()


@pytest.fixture(scope="module")
def workload(network):
    return list(random_queries(network, 200, seed=6))


@pytest.fixture(scope="module")
def pool(frozen):
    with QueryServer(frozen, workers=1) as server:
        yield server


@pytest.fixture(scope="module")
def front(frozen):
    with NetServerThread(InProcessClient(frozen)) as server:
        yield server


@pytest.fixture(params=["in-process", "pool", "net"])
def client(request, frozen, pool, front):
    if request.param == "in-process":
        with InProcessClient(frozen) as c:
            yield c
    elif request.param == "pool":
        with PoolClient(pool) as c:
            yield c
    else:
        with NetClient(*front.address) as c:
            yield c


class TestUnifiedInterface:
    """Each test runs against all three transports (parametrized)."""

    def test_is_a_query_client(self, client):
        assert isinstance(client, QueryClient)

    def test_distance_many_matches_engine(self, client, frozen, workload):
        assert client.distance_many(workload) == frozen.distance_many(workload)

    def test_distance_delegates(self, client, frozen, workload):
        s, t, w = workload[0]
        assert client.distance(s, t, w) == frozen.distance(s, t, w)

    def test_empty_batch(self, client):
        assert client.distance_many([]) == []

    def test_engine_valueerror_message_identical(self, client, frozen):
        bad = (0, 10**6, 1.0)
        with pytest.raises(ValueError) as engine_err:
            frozen.distance_many([bad])
        with pytest.raises(ValueError) as client_err:
            client.distance_many([bad])
        assert str(client_err.value) == str(engine_err.value)

    def test_health_reports_a_dict(self, client):
        report = client.health()
        assert isinstance(report, dict)
        assert "state" in report

    def test_closed_client_refuses(self, frozen, pool, front, client):
        client.close()
        with pytest.raises(RuntimeError, match="closed"):
            client.distance_many([(0, 1, 1.0)])


class TestTransportSpecifics:
    def test_in_process_health(self, frozen):
        with InProcessClient(frozen) as client:
            report = client.health()
        assert report["transport"] == "in-process"
        assert report["engine"] == type(frozen).__name__

    def test_in_process_close_releases_owned_engine(self):
        released = []

        class Engine:
            def distance_many(self, queries):
                return [0.0] * len(queries)

            def release(self):
                released.append(True)

        InProcessClient(Engine(), owns_engine=True).close()
        assert released == [True]
        released.clear()
        InProcessClient(Engine()).close()
        assert released == []

    def test_pool_health_carries_pool_report(self, pool):
        with PoolClient(pool) as client:
            report = client.health()
        assert report["transport"] == "pool"
        assert report["alive"] == 1
        assert report["workers"][0]["alive"] is True

    def test_pool_client_does_not_own_by_default(self, pool, workload):
        PoolClient(pool).close()
        # The pool survives: a fresh client still answers.
        with PoolClient(pool) as client:
            assert len(client.distance_many(workload[:5])) == 5

    def test_net_health_is_the_wire_report(self, front):
        with NetClient(*front.address) as client:
            report = client.health()
        assert report["transport"] == "net"
        assert report["queries"]["admitted"] >= 0

    def test_net_close_is_idempotent(self, front):
        client = NetClient(*front.address)
        client.close()
        client.close()

    def test_net_connect_failure_is_clean(self):
        with pytest.raises(OSError):
            NetClient("127.0.0.1", 1, timeout=0.5)
