"""Property-based equivalence: every way of serving a frozen image —
``mode="read"`` copy-load, ``mode="mmap"`` zero-copy attach, and a
shared-memory attach — answers identically, for all three index
families, over the hypothesis graph strategies."""

from __future__ import annotations

import io
import tempfile
from contextlib import contextmanager
from pathlib import Path

from hypothesis import given, settings

from tests.test_properties import (
    QUERY_CONSTRAINTS,
    quality_digraphs,
    quality_graphs,
    quality_weighted_graphs,
)

from repro.core import (
    DirectedWCIndex,
    WeightedWCIndex,
    build_wc_index_plus,
    load_frozen,
    save_frozen,
)
from repro.serve import ShmIndexImage, attach_image


@contextmanager
def served_engines(index):
    """The three serving attachments of one index: read-loaded, mmap'd,
    and shared-memory-attached (in-process)."""
    buffer = io.BytesIO()
    save_frozen(index, buffer)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "image.wcxb"
        path.write_bytes(buffer.getvalue())
        read_engine = load_frozen(path)
        mmap_engine = load_frozen(path, mode="mmap")
        try:
            with ShmIndexImage(index) as image:
                with attach_image(image.name, validate=True) as attached:
                    yield read_engine, mmap_engine, attached.engine
        finally:
            mmap_engine.release()


def all_pair_queries(n):
    return [
        (s, t, w)
        for s in range(n)
        for t in range(n)
        for w in QUERY_CONSTRAINTS[::2]
    ]


def assert_equivalent(index, frozen):
    queries = all_pair_queries(index.num_vertices)
    expected = frozen.distance_many(queries)
    with served_engines(index) as (read_engine, mmap_engine, shm_engine):
        assert read_engine.distance_many(queries) == expected
        assert mmap_engine.distance_many(queries) == expected
        assert shm_engine.distance_many(queries) == expected


@settings(max_examples=20)
@given(quality_graphs())
def test_undirected_serving_equivalence(graph):
    index = build_wc_index_plus(graph, "degree")
    assert_equivalent(index, index.freeze())


@settings(max_examples=20)
@given(quality_digraphs())
def test_directed_serving_equivalence(graph):
    index = DirectedWCIndex(graph)
    assert_equivalent(index, index.freeze())


@settings(max_examples=20)
@given(quality_weighted_graphs())
def test_weighted_serving_equivalence(graph):
    index = WeightedWCIndex(graph)
    assert_equivalent(index, index.freeze())
