"""Property-based equivalence: every way of serving a frozen image —
``mode="read"`` copy-load, ``mode="mmap"`` zero-copy attach, and a
shared-memory attach — answers identically, for all three index
families, on every available kernel backend (the stdlib oracle, and
the vectorized numpy backend when installed), over the hypothesis
graph strategies."""

from __future__ import annotations

import io
import tempfile
from contextlib import contextmanager
from pathlib import Path

from hypothesis import given, settings

from tests.test_properties import (
    QUERY_CONSTRAINTS,
    quality_digraphs,
    quality_graphs,
    quality_weighted_graphs,
)

from repro.core import (
    DirectedWCIndex,
    WeightedWCIndex,
    available_backends,
    build_wc_index_plus,
    load_frozen,
    save_frozen,
)
from repro.serve import ShmIndexImage, attach_image


@contextmanager
def served_engines(index, backend):
    """The three serving attachments of one index — read-loaded,
    mmap'd, and shared-memory-attached (in-process) — all pinned to
    one kernel backend."""
    buffer = io.BytesIO()
    save_frozen(index, buffer)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "image.wcxb"
        path.write_bytes(buffer.getvalue())
        read_engine = load_frozen(path, backend=backend)
        mmap_engine = load_frozen(path, mode="mmap", backend=backend)
        try:
            with ShmIndexImage(index) as image:
                with attach_image(
                    image.name, validate=True, backend=backend
                ) as attached:
                    yield read_engine, mmap_engine, attached.engine
        finally:
            mmap_engine.release()


def all_pair_queries(n):
    return [
        (s, t, w)
        for s in range(n)
        for t in range(n)
        for w in QUERY_CONSTRAINTS[::2]
    ]


def assert_equivalent(index):
    """Every attach mode × every available backend answers exactly like
    the frozen stdlib oracle."""
    queries = all_pair_queries(index.num_vertices)
    expected = index.freeze(backend="stdlib").distance_many(queries)
    for backend in available_backends():
        with served_engines(index, backend) as engines:
            for engine in engines:
                assert engine.kernel_backend == backend
                assert engine.distance_many(queries) == expected


@settings(max_examples=20)
@given(quality_graphs())
def test_undirected_serving_equivalence(graph):
    assert_equivalent(build_wc_index_plus(graph, "degree"))


@settings(max_examples=20)
@given(quality_digraphs())
def test_directed_serving_equivalence(graph):
    assert_equivalent(DirectedWCIndex(graph))


@settings(max_examples=20)
@given(quality_weighted_graphs())
def test_weighted_serving_equivalence(graph):
    assert_equivalent(WeightedWCIndex(graph))
