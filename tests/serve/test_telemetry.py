"""End-to-end telemetry: traces over TCP, STATS scrapes, v1 compat."""

import socket
import time

import pytest

from repro.core import build_wc_index_plus
from repro.graph.generators import scale_free_network
from repro.obs.telemetry import Telemetry
from repro.obs.top import REQUIRED_METRICS, render_dashboard
from repro.serve import (
    AnswerCache,
    CachingClient,
    InProcessClient,
    NetClient,
    NetServerThread,
)
from repro.serve import protocol
from repro.workloads.queries import random_queries


@pytest.fixture(scope="module")
def network():
    return scale_free_network(120, 3, num_qualities=5, seed=9)


@pytest.fixture(scope="module")
def frozen(network):
    return build_wc_index_plus(network).freeze()


@pytest.fixture(scope="module")
def workload(network):
    return list(random_queries(network, 60, seed=2))


def _await_trace(client, trace_id, deadline_s=5.0):
    """Poll STATS until the trace lands in the ring (the answer frame is
    written a hair before the trace is sealed)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        report = client.stats()
        for payload in report.get("recent_traces", []):
            if payload["trace_id"] == trace_id:
                return payload
        time.sleep(0.01)
    raise AssertionError(f"trace {trace_id:#x} never appeared in STATS")


class TestTracedRequests:
    def test_sampled_cache_miss_span_tree_fits_client_latency(
        self, frozen, workload
    ):
        with NetServerThread(InProcessClient(frozen)) as front:
            with NetClient(*front.address) as client:
                started = time.monotonic()
                answers, trace_ids = client.distance_many_sampled(workload)
                client_latency_s = time.monotonic() - started
                assert answers == frozen.distance_many(workload)
                assert len(trace_ids) == 1
                payload = _await_trace(client, trace_ids[0])
        assert payload["queries"] == len(workload)
        assert payload["meta"] == {"cache_hit": False}
        top_level = [s for s in payload["spans"] if "parent" not in s]
        names = {s["name"] for s in top_level}
        assert {"queue-wait", "batch-coalesce", "kernel", "serialize"} <= names
        # The server-side span tree must fit inside what the client saw:
        # spans are monotonic-clock regions of the request's lifetime.
        span_sum_s = sum(s["duration_us"] for s in top_level) / 1e6
        assert span_sum_s <= client_latency_s
        assert payload["total_us"] / 1e6 <= client_latency_s

    def test_forced_sample_wins_over_disabled_sampling(self, frozen, workload):
        options = {"telemetry": Telemetry(sample_every=0)}
        with NetServerThread(InProcessClient(frozen), **options) as front:
            with NetClient(*front.address) as client:
                _, trace_ids = client.distance_many_sampled(workload[:4])
                payload = _await_trace(client, trace_ids[0])
        assert payload["trace_id"] == trace_ids[0]

    def test_cache_hit_trace_short_circuits(self, frozen, workload):
        backend = CachingClient(
            InProcessClient(frozen), AnswerCache(frozen, entries=4096)
        )
        with NetServerThread(backend) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload)  # warm the cache
                _, trace_ids = client.distance_many_sampled(workload)
                payload = _await_trace(client, trace_ids[0])
        assert payload["meta"] == {"cache_hit": True}
        names = [s["name"] for s in payload["spans"]]
        assert names == ["cache-lookup", "serialize"]

    def test_cache_miss_nests_backend_spans_under_kernel(
        self, frozen, workload
    ):
        backend = CachingClient(
            InProcessClient(frozen), AnswerCache(frozen, entries=4096)
        )
        with NetServerThread(backend) as front:
            with NetClient(*front.address) as client:
                _, trace_ids = client.distance_many_sampled(workload)
                payload = _await_trace(client, trace_ids[0])
        assert payload["meta"] == {"cache_hit": False}
        nested = {
            s["name"]: s for s in payload["spans"] if s.get("parent")
        }
        assert "cache-lookup" in nested
        assert nested["cache-lookup"]["parent"] == "kernel"
        assert nested["cache-lookup"]["meta"]["misses"] > 0

    def test_slow_query_log_catches_unsampled_tail(self, frozen, workload):
        # Threshold so low every request is "slow": unsampled requests
        # must still surface as summary rows.
        options = {"telemetry": Telemetry(sample_every=0, slow_ms=0.0001)}
        with NetServerThread(InProcessClient(frozen), **options) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload)
                deadline = time.monotonic() + 5.0
                rows = []
                while time.monotonic() < deadline and not rows:
                    rows = client.stats().get("slow_queries", [])
                    time.sleep(0.01)
        assert rows
        assert rows[0]["meta"]["sampled"] is False


class TestStatsScrapes:
    def test_json_stats_shape(self, frozen, workload):
        with NetServerThread(InProcessClient(frozen)) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload)
                report = client.stats()
        assert report["server"]["protocol_version"] == protocol.PROTOCOL_VERSION
        assert report["stats"]["queries"]["answered"] == len(workload)
        for name in REQUIRED_METRICS:
            assert name in report["metrics"], name

    def test_prometheus_scrape_exposes_required_metrics(
        self, frozen, workload
    ):
        with NetServerThread(InProcessClient(frozen)) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload)
                text = client.stats(prometheus=True)
        for name in REQUIRED_METRICS:
            assert name in text, name
        assert "# TYPE repro_queries_answered_total counter" in text

    def test_counters_monotonic_across_scrapes(self, frozen, workload):
        with NetServerThread(InProcessClient(frozen)) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload)
                first = client.stats()["metrics"]
                client.distance_many(workload)
                second = client.stats()["metrics"]
        for name in REQUIRED_METRICS:
            if name.endswith("_total") or name.endswith("_count"):
                assert second[name] >= first[name], name
        assert (
            second["repro_queries_answered_total"]
            == first["repro_queries_answered_total"] + len(workload)
        )

    def test_health_report_embeds_metrics_and_telemetry(
        self, frozen, workload
    ):
        with NetServerThread(InProcessClient(frozen)) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload)
                report = client.health()
        assert report["telemetry"]["tracing"] is True
        assert "repro_queries_answered_total" in report["metrics"]

    def test_dashboard_renders_a_live_report(self, frozen, workload):
        with NetServerThread(InProcessClient(frozen)) as front:
            with NetClient(*front.address) as client:
                client.distance_many(workload)
                first = client.stats()
                client.distance_many(workload)
                second = client.stats()
        text = render_dashboard(second, first, elapsed_s=1.0)
        assert "repro top" in text
        assert "latency ms" in text
        assert "tracing on" in text


class TestV1Compat:
    def _recv_frames(self, sock, n=1, timeout=5.0):
        decoder = protocol.FrameDecoder()
        frames = []
        sock.settimeout(timeout)
        while len(frames) < n:
            data = sock.recv(65536)
            if not data:
                break
            frames.extend(decoder.feed(data))
        return frames

    def test_v1_client_round_trips_with_v1_stamped_replies(
        self, frozen, workload
    ):
        with NetServerThread(InProcessClient(frozen)) as front:
            with socket.create_connection(front.address, timeout=5.0) as sock:
                sock.sendall(protocol.encode_query(5, workload, version=1))
                frames = self._recv_frames(sock, 1)
        assert frames[0].msg_type == protocol.MSG_ANSWER
        # The reply header must be stamped v1: a v1-only peer would
        # otherwise refuse its own answer.
        assert frames[0].version == 1
        request_id, answers = protocol.decode_answer(frames[0].payload)
        assert request_id == 5
        assert answers == frozen.distance_many(workload)

    def test_hello_advertises_both_versions(self, frozen):
        with NetServerThread(InProcessClient(frozen)) as front:
            with socket.create_connection(front.address, timeout=5.0) as sock:
                sock.sendall(protocol.encode_hello({"peer": "test"}))
                hello = self._recv_frames(sock, 1)
        assert hello[0].msg_type == protocol.MSG_HELLO
        info = protocol.decode_hello(hello[0].payload)
        assert info["protocol_versions"] == list(protocol.SUPPORTED_VERSIONS)
