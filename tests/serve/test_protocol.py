"""Tests for the length-prefixed binary frame protocol."""

import json
import math
import struct

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.serve import protocol
from repro.serve.protocol import (
    CONNECTION_SCOPE,
    FLAG_SAMPLE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    MAX_QUERIES_PER_FRAME,
    MSG_ANSWER,
    MSG_HEALTH,
    MSG_HELLO,
    MSG_QUERY,
    MSG_STATS,
    STATS_JSON,
    STATS_PROMETHEUS,
    SUPPORTED_VERSIONS,
    Frame,
    FrameDecoder,
    FrameTooLargeError,
    ProtocolError,
    VersionMismatchError,
    decode_answer,
    decode_error,
    decode_health_report,
    decode_hello,
    decode_query,
    decode_stats,
    decode_stats_request,
    encode_answer,
    encode_error,
    encode_frame,
    encode_health_report,
    encode_hello,
    encode_query,
    encode_stats,
    encode_stats_request,
)

INF = float("inf")
_HEADER = struct.Struct("!HBBI")


def one_frame(data: bytes) -> Frame:
    frames = FrameDecoder().feed(data)
    assert len(frames) == 1
    return frames[0]


class TestRoundTrips:
    def test_query(self):
        queries = [(0, 1, 2.0), (5, 9, INF), (-1, 2**62, 0.25)]
        request_id, decoded, trace = decode_query(
            one_frame(encode_query(7, queries)).payload
        )
        assert request_id == 7
        assert decoded == queries
        assert trace == (0, 0)

    def test_empty_query_batch(self):
        request_id, decoded, trace = decode_query(
            one_frame(encode_query(0, [])).payload
        )
        assert (request_id, decoded, trace) == (0, [], (0, 0))

    def test_query_trace_header_roundtrips(self):
        payload = one_frame(
            encode_query(
                4, [(1, 2, 3.0)], trace_id=0xDEADBEEFCAFE, flags=FLAG_SAMPLE
            )
        ).payload
        request_id, decoded, trace = decode_query(payload)
        assert request_id == 4
        assert decoded == [(1, 2, 3.0)]
        assert trace == (0xDEADBEEFCAFE, FLAG_SAMPLE)

    def test_v1_query_has_no_trace(self):
        queries = [(0, 1, 2.0)]
        frame = one_frame(encode_query(7, queries, version=1))
        assert frame.version == 1
        request_id, decoded, trace = decode_query(
            frame.payload, version=frame.version
        )
        assert (request_id, decoded, trace) == (7, queries, None)

    def test_v1_query_refuses_trace_header(self):
        with pytest.raises(ProtocolError, match="version 1"):
            encode_query(7, [], trace_id=1, version=1)

    def test_answer_roundtrips_inf_exactly(self):
        answers = [0.0, 3.0, INF, 1e308, 0.1]
        request_id, decoded = decode_answer(
            one_frame(encode_answer(3, answers)).payload
        )
        assert request_id == 3
        assert decoded == answers

    def test_error(self):
        payload = one_frame(
            encode_error(9, protocol.ERR_QUERY, "ValueError: bad query")
        ).payload
        assert decode_error(payload) == (
            9,
            protocol.ERR_QUERY,
            "ValueError: bad query",
        )

    def test_connection_scoped_error(self):
        payload = one_frame(
            encode_error(CONNECTION_SCOPE, protocol.ERR_MALFORMED, "boom")
        ).payload
        assert decode_error(payload)[0] == CONNECTION_SCOPE

    def test_hello(self):
        info = {"peer": "test", "protocol": protocol.PROTOCOL_VERSION}
        assert decode_hello(one_frame(encode_hello(info)).payload) == info

    def test_health_report_sanitizes_non_finite(self):
        report = {"latency": {"p99_ms": INF}, "nan": float("nan")}
        decoded = decode_health_report(
            one_frame(encode_health_report(report)).payload
        )
        assert decoded["latency"]["p99_ms"] == "inf"
        assert decoded["nan"] == "nan"

    @given(
        request_id=st.integers(min_value=0, max_value=CONNECTION_SCOPE - 1),
        queries=st.lists(
            st.tuples(
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
                st.one_of(
                    st.floats(allow_nan=False, allow_infinity=False),
                    st.just(INF),
                ),
            ),
            max_size=50,
        ),
    )
    def test_query_roundtrip_property(self, request_id, queries):
        decoded_id, decoded, trace = decode_query(
            one_frame(encode_query(request_id, queries)).payload
        )
        assert decoded_id == request_id
        assert decoded == queries
        assert trace == (0, 0)

    @given(
        request_id=st.integers(min_value=0, max_value=CONNECTION_SCOPE),
        answers=st.lists(
            st.one_of(
                st.floats(allow_nan=False, allow_infinity=False),
                st.just(INF),
            ),
            max_size=50,
        ),
    )
    def test_answer_roundtrip_property(self, request_id, answers):
        decoded_id, decoded = decode_answer(
            one_frame(encode_answer(request_id, answers)).payload
        )
        assert decoded_id == request_id
        assert decoded == answers


class TestFrameDecoder:
    def test_byte_at_a_time_reassembly(self):
        data = encode_query(1, [(0, 1, 2.0)]) + encode_frame(MSG_HEALTH)
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i:i + 1]))
        assert [f.msg_type for f in frames] == [MSG_QUERY, MSG_HEALTH]
        assert decoder.buffered_bytes == 0

    @given(cut=st.integers(min_value=0, max_value=200))
    def test_any_split_point_is_invisible(self, cut):
        data = encode_answer(2, [1.0, INF]) + encode_hello({"a": 1})
        cut = min(cut, len(data))
        decoder = FrameDecoder()
        frames = decoder.feed(data[:cut]) + decoder.feed(data[cut:])
        assert [f.msg_type for f in frames] == [MSG_ANSWER, MSG_HELLO]

    def test_many_frames_in_one_feed(self):
        data = b"".join(encode_answer(i, [float(i)]) for i in range(10))
        frames = FrameDecoder().feed(data)
        assert [decode_answer(f.payload)[0] for f in frames] == list(range(10))

    def test_truncated_frame_stays_buffered(self):
        data = encode_query(1, [(0, 1, 2.0)])
        decoder = FrameDecoder()
        assert decoder.feed(data[:-1]) == []
        assert decoder.buffered_bytes == len(data) - 1
        assert len(decoder.feed(data[-1:])) == 1

    def test_bad_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            FrameDecoder().feed(_HEADER.pack(0xDEAD, 1, MSG_HELLO, 0))

    def test_version_mismatch_carries_peer_version(self):
        frame = encode_frame(MSG_HELLO, b"{}", version=9)
        with pytest.raises(VersionMismatchError) as excinfo:
            FrameDecoder().feed(frame)
        assert excinfo.value.peer_version == 9

    def test_unknown_message_type(self):
        with pytest.raises(ProtocolError, match="message type"):
            FrameDecoder().feed(
                _HEADER.pack(MAGIC, protocol.PROTOCOL_VERSION, 99, 0)
            )

    def test_hostile_declared_size_rejected_from_header_alone(self):
        # Only the 8 header bytes arrive; the decoder must refuse the
        # declared size without waiting for (or allocating) the payload.
        header = _HEADER.pack(
            MAGIC, protocol.PROTOCOL_VERSION, MSG_QUERY, MAX_PAYLOAD_BYTES + 1
        )
        with pytest.raises(FrameTooLargeError):
            FrameDecoder().feed(header)


class TestCaps:
    def test_oversized_query_batch_rejected_at_encode(self):
        queries = [(0, 1, 1.0)] * (MAX_QUERIES_PER_FRAME + 1)
        with pytest.raises(FrameTooLargeError, match="split the batch"):
            encode_query(0, queries)

    def test_oversized_declared_count_rejected_at_decode(self):
        payload = struct.pack("!II", 0, MAX_QUERIES_PER_FRAME + 1)
        with pytest.raises(FrameTooLargeError):
            decode_query(payload)

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame(MSG_HELLO, b"x" * (MAX_PAYLOAD_BYTES + 1))

    def test_request_id_out_of_range(self):
        with pytest.raises(ProtocolError):
            encode_query(CONNECTION_SCOPE, [])


class TestMalformedPayloads:
    def test_query_count_payload_mismatch(self):
        payload = (
            struct.pack("!II", 0, 2)
            + struct.pack("!QB", 0, 0)
            + struct.pack("!qqd", 0, 1, 2.0)
        )
        with pytest.raises(ProtocolError, match="must carry"):
            decode_query(payload)

    def test_v1_query_count_payload_mismatch(self):
        payload = struct.pack("!II", 0, 2) + struct.pack("!qqd", 0, 1, 2.0)
        with pytest.raises(ProtocolError, match="must carry"):
            decode_query(payload, version=1)

    def test_query_missing_prefix(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_query(b"\x00")

    def test_query_missing_trace_header(self):
        # A v2 frame whose payload stops after the !II prefix: the
        # decoder must name the missing trace header, not mis-slice.
        with pytest.raises(ProtocolError, match="missing trace header"):
            decode_query(struct.pack("!II", 0, 0))

    def test_answer_count_payload_mismatch(self):
        payload = struct.pack("!II", 0, 3) + struct.pack("!d", 1.0)
        with pytest.raises(ProtocolError, match="must carry"):
            decode_answer(payload)

    def test_error_unknown_code(self):
        with pytest.raises(ProtocolError, match="error code"):
            decode_error(struct.pack("!IB", 0, 99))

    def test_error_bad_utf8(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_error(
                struct.pack("!IB", 0, protocol.ERR_QUERY) + b"\xff\xfe"
            )

    def test_hello_not_json(self):
        with pytest.raises(ProtocolError, match="HELLO"):
            decode_hello(b"not json")

    def test_hello_not_an_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_hello(json.dumps([1, 2]).encode())

    def test_health_not_an_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_health_report(b"[1]")

    def test_health_report_is_strict_json(self):
        payload = one_frame(
            encode_health_report({"p": INF, "n": 3})
        ).payload
        # strict JSON: parseable by any peer, no NaN/Infinity literals
        parsed = json.loads(payload.decode("utf-8"))
        assert parsed == {"p": "inf", "n": 3}
        assert math.isfinite(parsed["n"])

    def test_health_sanitization_roundtrips_nested_structures(self):
        report = {
            "latency": {"p50_ms": 1.5, "p99_ms": INF, "samples": []},
            "workers": [{"slot": 0, "lag": float("nan")}, {"slot": 1}],
            "neg": -INF,
        }
        decoded = decode_health_report(
            one_frame(encode_health_report(report)).payload
        )
        assert decoded["latency"] == {
            "p50_ms": 1.5, "p99_ms": "inf", "samples": []
        }
        assert decoded["workers"] == [
            {"slot": 0, "lag": "nan"}, {"slot": 1}
        ]
        assert decoded["neg"] == "-inf"


class TestStatsFrames:
    def test_supported_versions_cover_both_generations(self):
        assert SUPPORTED_VERSIONS == (1, 2)
        assert protocol.PROTOCOL_VERSION == 2

    def test_stats_request_roundtrip(self):
        for fmt in (STATS_JSON, STATS_PROMETHEUS):
            frame = one_frame(encode_stats_request(fmt))
            assert frame.msg_type == MSG_STATS
            assert decode_stats_request(frame.payload) == fmt

    def test_empty_stats_request_defaults_to_json(self):
        assert decode_stats_request(b"") == STATS_JSON

    def test_stats_request_rejects_unknown_format(self):
        with pytest.raises(ProtocolError, match="format"):
            decode_stats_request(b"\x07")

    def test_stats_request_rejects_trailing_bytes(self):
        with pytest.raises(ProtocolError):
            decode_stats_request(b"\x00\x00")

    def test_json_stats_roundtrip_sanitizes_non_finite(self):
        report = {"stats": {"p99_ms": INF}, "queries": {"admitted": 4}}
        payload = one_frame(encode_stats(STATS_JSON, report)).payload
        fmt, decoded = decode_stats(payload)
        assert fmt == STATS_JSON
        assert decoded == {"stats": {"p99_ms": "inf"}, "queries": {"admitted": 4}}

    def test_prometheus_stats_roundtrip(self):
        text = "# TYPE repro_queries_admitted_total counter\n" \
               "repro_queries_admitted_total 12\n"
        payload = one_frame(encode_stats(STATS_PROMETHEUS, text)).payload
        fmt, decoded = decode_stats(payload)
        assert fmt == STATS_PROMETHEUS
        assert decoded == text

    def test_encode_stats_rejects_mismatched_body_type(self):
        with pytest.raises(ProtocolError):
            encode_stats(STATS_JSON, "not a dict")
        with pytest.raises(ProtocolError):
            encode_stats(STATS_PROMETHEUS, {"not": "text"})

    def test_truncated_stats_payload(self):
        with pytest.raises(ProtocolError, match="truncated STATS"):
            decode_stats(b"")

    def test_hostile_stats_format_byte(self):
        with pytest.raises(ProtocolError, match="format"):
            decode_stats(b"\xff{}")

    def test_hostile_stats_json_body(self):
        with pytest.raises(ProtocolError):
            decode_stats(bytes([STATS_JSON]) + b"not json")

    def test_hostile_stats_non_object_json(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_stats(bytes([STATS_JSON]) + b"[1, 2]")

    def test_hostile_stats_bad_utf8(self):
        with pytest.raises(ProtocolError):
            decode_stats(bytes([STATS_PROMETHEUS]) + b"\xff\xfe")
