"""Tests for the shared-memory multi-process QueryServer."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from tests.helpers import random_graph
from tests.serve.test_shm import segment_exists

from repro.core import (
    DirectedWCIndex,
    WeightedWCIndex,
    build_wc_index_plus,
    save_frozen,
)
from repro.graph.generators import (
    oriented_copy,
    paper_figure3,
    scale_free_network,
    with_random_lengths,
)
from repro.serve import QueryServer
from repro.workloads.queries import random_queries


@pytest.fixture(scope="module")
def network():
    return scale_free_network(120, 3, num_qualities=5, seed=9)


@pytest.fixture(scope="module")
def frozen(network):
    return build_wc_index_plus(network).freeze()


@pytest.fixture(scope="module")
def workload(network):
    return list(random_queries(network, 400, seed=2))


class TestQueryServer:
    def test_batch_matches_single_process_engine(self, frozen, workload):
        with QueryServer(frozen, workers=2) as server:
            assert server.query_batch(workload) == frozen.distance_many(
                workload
            )

    def test_single_query(self, frozen, workload):
        s, t, w = workload[0]
        with QueryServer(frozen, workers=2) as server:
            assert server.query(s, t, w) == frozen.distance(s, t, w)

    def test_empty_batch(self, frozen):
        with QueryServer(frozen, workers=1) as server:
            assert server.query_batch([]) == []

    def test_explicit_chunk_size(self, frozen, workload):
        expected = frozen.distance_many(workload)
        with QueryServer(frozen, workers=2) as server:
            assert server.query_batch(workload, chunk_size=7) == expected
            assert (
                server.query_batch(workload, chunk_size=len(workload) * 2)
                == expected
            )
            with pytest.raises(ValueError, match="chunk_size"):
                server.query_batch(workload, chunk_size=0)

    def test_serves_from_a_wcxb_path(self, tmp_path, frozen, workload):
        path = tmp_path / "net.wcxb"
        save_frozen(frozen, path)
        with QueryServer(str(path), workers=2) as server:
            assert server.query_batch(workload) == frozen.distance_many(
                workload
            )

    def test_directed_and_weighted_families(self, network):
        workload = list(random_queries(network, 200, seed=4))
        digraph = oriented_copy(network, one_way_prob=0.4, seed=1)
        directed = DirectedWCIndex(digraph).freeze()
        wgraph = with_random_lengths(network, seed=1)
        weighted = WeightedWCIndex(wgraph).freeze()
        for engine in (directed, weighted):
            with QueryServer(engine, workers=2) as server:
                assert server.query_batch(workload) == engine.distance_many(
                    workload
                )

    def test_worker_error_propagates_and_pool_survives(
        self, frozen, workload
    ):
        with QueryServer(frozen, workers=2) as server:
            with pytest.raises(RuntimeError, match="out of range"):
                server.query_batch([(0, 10_000, 1.0)])
            # The pool keeps serving after a failed batch.
            assert server.query_batch(workload) == frozen.distance_many(
                workload
            )

    def test_close_releases_the_segment(self, frozen):
        server = QueryServer(frozen, workers=2)
        name = server._image.name
        server.query(0, 1, 1.0)
        assert segment_exists(name)
        server.close()
        assert not segment_exists(name)
        assert server.closed
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.query_batch([(0, 1, 1.0)])
        with pytest.raises(RuntimeError, match="closed"):
            server.image_bytes

    def test_kernel_pinned_into_pool_and_health(self, frozen, workload):
        expected = frozen.distance_many(workload)
        for kernel in (None, "stdlib"):
            with QueryServer(
                frozen, workers=2, kernel=kernel, fallback=True
            ) as server:
                if kernel is not None:
                    assert server.kernel_backend == kernel
                assert server.health()["kernel"] == server.kernel_backend
                assert server.query_batch(workload) == expected
                # The in-process fallback engine answers on the same
                # pinned backend.
                fallback = server._fallback()
                assert fallback.kernel_backend == server.kernel_backend
                assert fallback.distance_many(workload) == expected

    def test_explicit_numpy_kernel_fails_fast_when_unavailable(
        self, frozen, monkeypatch
    ):
        from repro.core import KernelUnavailableError, kernels

        monkeypatch.setattr(kernels, "_load_numpy", lambda: None)
        monkeypatch.setattr(kernels, "_INSTANCES", {})
        with pytest.raises(KernelUnavailableError):
            QueryServer(frozen, workers=1, kernel="numpy")

    def test_workers_validated(self, frozen):
        with pytest.raises(ValueError, match="worker"):
            QueryServer(frozen, workers=0)

    def test_pool_degrades_gracefully_when_a_worker_dies(
        self, frozen, workload
    ):
        # Regression: a worker killed while blocked on a *shared* task
        # queue used to poison the queue lock — the pool wedged and
        # query_batch polled forever.  With per-worker queues the next
        # batch simply routes around the dead worker...
        expected = frozen.distance_many(workload)
        server = QueryServer(frozen, workers=2)
        try:
            assert server.query_batch(workload[:20]) == expected[:20]
            victim = server._workers[0]
            victim.terminate()
            victim.join()
            assert server.query_batch(workload) == expected
            # ...and only a fully dead pool refuses outright.
            server._workers[1].terminate()
            server._workers[1].join()
            with pytest.raises(RuntimeError, match="no live query workers"):
                server.query_batch(workload[:5])
        finally:
            server.close()

    def test_startup_failure_does_not_leak_the_segment(
        self, frozen, monkeypatch
    ):
        # Regression: a failure between publishing the image and
        # starting the workers used to orphan the /dev/shm segment.
        import repro.serve.server as server_module

        created = []
        real_image = server_module.ShmIndexImage

        class RecordingImage(real_image):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        class ExplodingContext:
            def __getattr__(self, name):
                raise OSError("no processes for you")

        monkeypatch.setattr(server_module, "ShmIndexImage", RecordingImage)
        monkeypatch.setattr(
            server_module.multiprocessing,
            "get_context",
            lambda *args, **kwargs: ExplodingContext(),
        )
        with pytest.raises(OSError, match="no processes"):
            QueryServer(frozen, workers=2)
        assert len(created) == 1
        assert not segment_exists(created[0].name)

    def test_startup_failure_stops_already_started_workers(
        self, frozen, monkeypatch
    ):
        # Regression: if worker k's start() failed, workers 0..k-1 kept
        # running forever, attached to the destroyed image.
        import multiprocessing as mp

        import repro.serve.server as server_module

        real_context = mp.get_context("fork")
        started = []

        class FlakyProcess(real_context.Process):
            def start(self):
                if started:
                    raise OSError("process limit reached")
                super().start()
                started.append(self)

        class FlakyContext:
            Process = FlakyProcess

            def __getattr__(self, name):
                return getattr(real_context, name)

        monkeypatch.setattr(
            server_module.multiprocessing,
            "get_context",
            lambda *args, **kwargs: FlakyContext(),
        )
        with pytest.raises(OSError, match="process limit"):
            QueryServer(frozen, workers=2)
        assert len(started) == 1
        started[0].join(timeout=5.0)
        assert not started[0].is_alive()

    def test_repr(self, frozen):
        server = QueryServer(frozen, workers=1)
        assert "workers=1" in repr(server)
        server.close()
        assert "closed" in repr(server)


class TestCleanShutdown:
    def test_no_resource_tracker_noise(self, tmp_path):
        # The regression this guards: attaching workers used to register
        # the segment with the resource tracker, so worker/creator exits
        # produced "leaked shared_memory objects" warnings or tracker
        # KeyError tracebacks.  A full serve lifecycle in a fresh
        # interpreter must exit silently.
        index = build_wc_index_plus(paper_figure3(), "identity")
        path = tmp_path / "net.wcxb"
        save_frozen(index, path)
        script = (
            "from repro.serve import QueryServer\n"
            f"with QueryServer({str(path)!r}, workers=2) as server:\n"
            "    assert server.query_batch([(0, 4, 1.0), (2, 5, 2.0)])\n"
            "print('done')\n"
        )
        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(Path(repro.__file__).resolve().parents[1])]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "done" in result.stdout
        assert result.stderr.strip() == ""

    def test_queued_work_finishes_before_shutdown(self, tmp_path):
        g = random_graph(7)
        frozen = build_wc_index_plus(g, "degree").freeze()
        workload = list(random_queries(g, 50, seed=0))
        server = QueryServer(frozen, workers=2)
        try:
            answers = server.query_batch(workload)
        finally:
            server.close()
        assert answers == frozen.distance_many(workload)
