"""Tests for the worker supervisor: respawn, backoff, circuit breaker."""

import os
import signal
import time

import pytest

from repro.core import build_wc_index_plus
from repro.graph.generators import scale_free_network
from repro.serve import QueryServer, Supervisor
from repro.workloads.queries import random_queries


@pytest.fixture(scope="module")
def network():
    return scale_free_network(60, 2, num_qualities=3, seed=17)


@pytest.fixture(scope="module")
def frozen(network):
    return build_wc_index_plus(network).freeze()


@pytest.fixture(scope="module")
def workload(network):
    return list(random_queries(network, 80, seed=23))


def kill_slot(server, slot):
    os.kill(server.worker_states()[slot]["pid"], signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        if not server.worker_states()[slot]["alive"]:
            return
        time.sleep(0.01)
    raise AssertionError("worker survived SIGKILL")


@pytest.fixture
def unsupervised(frozen):
    """A pool with no supervisor thread; tests drive check() by hand."""
    with QueryServer(frozen, workers=2) as server:
        yield server


class TestRespawn:
    def test_respawn_worker_replaces_dead_slot(self, unsupervised):
        old_pid = unsupervised.worker_states()[0]["pid"]
        kill_slot(unsupervised, 0)
        assert unsupervised.respawn_worker(0)
        state = unsupervised.worker_states()[0]
        assert state["alive"]
        assert state["pid"] != old_pid

    def test_respawn_refuses_live_slot(self, unsupervised):
        assert not unsupervised.respawn_worker(0)

    def test_respawn_unknown_slot(self, unsupervised):
        with pytest.raises(ValueError, match="slot"):
            unsupervised.respawn_worker(7)

    def test_respawned_worker_serves(self, unsupervised, frozen, workload):
        expected = frozen.distance_many(workload)
        kill_slot(unsupervised, 0)
        kill_slot(unsupervised, 1)
        assert unsupervised.respawn_worker(0)
        assert unsupervised.query_batch(workload, timeout=10.0) == expected


class TestCheck:
    """check(now=...) makes supervision fully deterministic."""

    def test_first_death_respawns_immediately(self, unsupervised):
        supervisor = Supervisor(unsupervised)
        kill_slot(unsupervised, 0)
        assert supervisor.check() == 1
        assert unsupervised.worker_states()[0]["alive"]
        assert supervisor.total_restarts == 1

    def test_consecutive_deaths_back_off(self, unsupervised):
        supervisor = Supervisor(
            unsupervised,
            backoff_base=10.0,
            backoff_max=100.0,
            max_restarts=50,
        )
        now = time.monotonic()
        kill_slot(unsupervised, 0)
        assert supervisor.check(now) == 1  # first: immediate
        kill_slot(unsupervised, 0)
        # Second death inside the reset window: due in backoff_base.
        assert supervisor.check(now + 1.0) == 0
        assert supervisor.check(now + 5.0) == 0  # still backing off
        assert supervisor.check(now + 12.0) == 1  # past the delay
        assert supervisor.total_restarts == 2

    def test_survival_resets_the_backoff(self, unsupervised):
        supervisor = Supervisor(
            unsupervised,
            backoff_base=10.0,
            backoff_reset=5.0,
            max_restarts=50,
        )
        now = time.monotonic()
        kill_slot(unsupervised, 0)
        assert supervisor.check(now) == 1
        # The respawned worker survives past backoff_reset...
        assert supervisor.check(now + 6.0) == 0
        kill_slot(unsupervised, 0)
        # ...so its next death respawns immediately again.
        assert supervisor.check(now + 6.5) == 1

    def test_circuit_breaker_opens_and_is_sticky(self, unsupervised):
        supervisor = Supervisor(
            unsupervised,
            max_restarts=2,
            restart_window=1000.0,
            backoff_base=0.0,
        )
        now = time.monotonic()
        for round in range(2):
            kill_slot(unsupervised, 0)
            assert supervisor.check(now + round) == 1
        kill_slot(unsupervised, 0)
        assert supervisor.check(now + 10.0) == 0
        assert supervisor.degraded
        # Sticky: later checks keep refusing.
        assert supervisor.check(now + 500.0) == 0
        assert not unsupervised.worker_states()[0]["alive"]
        health = supervisor.health()
        assert health["state"] == "degraded"
        assert health["workers"][0]["state"] == "dead"
        # reset() re-arms it.
        supervisor.reset()
        assert not supervisor.degraded
        assert supervisor.check(now + 500.0) == 1
        assert supervisor.health()["state"] == "ok"

    def test_events_age_out_of_the_window(self, unsupervised):
        supervisor = Supervisor(
            unsupervised,
            max_restarts=2,
            restart_window=30.0,
            backoff_base=0.0,
        )
        now = time.monotonic()
        for round in range(2):
            kill_slot(unsupervised, 0)
            assert supervisor.check(now + round * 60.0) == 1
        kill_slot(unsupervised, 0)
        # Both events fell out of the 30s window: no breaker trip.
        assert supervisor.check(now + 200.0) == 1
        assert not supervisor.degraded


class TestThread:
    def test_supervised_server_starts_and_stops_the_thread(self, frozen):
        with QueryServer(frozen, workers=1, supervise=True) as server:
            supervisor = server.supervisor
            assert supervisor is not None
            assert supervisor._thread.is_alive()
        assert server.supervisor is None

    def test_thread_respawns_without_intervention(self, frozen, workload):
        expected = frozen.distance_many(workload)
        with QueryServer(frozen, workers=2, supervise=True) as server:
            kill_slot(server, 1)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if server.worker_states()[1]["alive"]:
                    break
                time.sleep(0.01)
            assert server.worker_states()[1]["alive"]
            assert server.query_batch(workload) == expected

    def test_supervisor_options_forward(self, frozen):
        with QueryServer(
            frozen,
            workers=1,
            supervise=True,
            supervisor_options={"max_restarts": 9, "restart_window": 7.0},
        ) as server:
            assert server.supervisor._max_restarts == 9
            assert server.supervisor._restart_window == 7.0

    def test_bad_options_do_not_leak_the_segment(self, frozen):
        with pytest.raises(ValueError, match="max_restarts"):
            QueryServer(
                frozen,
                workers=1,
                supervise=True,
                supervisor_options={"max_restarts": 0},
                segment_name="wcxbadopts",
            )
        from tests.serve.test_shm import segment_exists

        assert not segment_exists("wcxbadopts")


class TestHealth:
    def test_unsupervised_health(self, unsupervised):
        health = unsupervised.health()
        assert health["state"] == "ok"
        assert health["supervised"] is False
        assert health["alive"] == 2
        assert [w["slot"] for w in health["workers"]] == [0, 1]

    def test_health_epoch_parses_generation_suffix(self, frozen):
        with QueryServer(
            frozen, workers=1, segment_name="wcxhealthg41"
        ) as server:
            assert server.health()["epoch"] == 41

    def test_closed_health(self, frozen):
        server = QueryServer(frozen, workers=1)
        server.close()
        assert server.health()["state"] == "closed"
