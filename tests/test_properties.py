"""Property-based tests (hypothesis): the heavy cross-validation layer.

Strategy: generate arbitrary small quality graphs, then assert that every
engine in the library answers every constrained-distance query identically
to the brute-force constrained BFS — plus the structural invariants the
paper proves (Theorems 1 and 3).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines import (
    BidirectionalConstrainedBFS,
    ConstrainedBFS,
    DirectedConstrainedBFS,
    LCRAdaptIndex,
    NaivePerQualityIndex,
    PartitionedBFS,
    PartitionedDijkstra,
)
from repro.core import (
    DirectedWCIndex,
    DynamicWCIndex,
    WCIndexBuilder,
    WCPathIndex,
    WeightedWCIndex,
    build_wc_index_plus,
    constrained_dijkstra,
)
from repro.core.paths import is_valid_w_path, path_length
from repro.core.validation import (
    dominated_entries,
    theorem3_violations,
    unnecessary_entries,
)
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph

INF = float("inf")

#: Constraint pool used by the query strategies: midpoints, every edge
#: quality, and 5.0 — above the maximum generated quality, so
#: quality-infeasible queries are always exercised.
QUERY_CONSTRAINTS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0)


@st.composite
def quality_graphs(draw, max_vertices: int = 12, max_quality: int = 4):
    """An arbitrary undirected quality graph (possibly disconnected)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs))
        if all_pairs
        else st.just([])
    )
    graph = Graph(n)
    for u, v in chosen:
        quality = draw(st.integers(min_value=1, max_value=max_quality))
        graph.add_edge(u, v, float(quality))
    return graph


@st.composite
def graphs_with_query(draw):
    graph = draw(quality_graphs())
    n = graph.num_vertices
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1))
    w = draw(st.sampled_from(QUERY_CONSTRAINTS))
    return graph, s, t, w


@st.composite
def quality_digraphs(draw, max_vertices: int = 10, max_quality: int = 4):
    """An arbitrary digraph (sparse, so unreachable pairs are common)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    all_pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    chosen = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs))
        if all_pairs
        else st.just([])
    )
    graph = DiGraph(n)
    for u, v in chosen:
        quality = draw(st.integers(min_value=1, max_value=max_quality))
        graph.add_edge(u, v, float(quality))
    return graph


@st.composite
def quality_weighted_graphs(
    draw, max_vertices: int = 10, max_quality: int = 4
):
    """An arbitrary weighted quality graph (integer lengths keep the
    cross-engine distance comparison exact)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs))
        if all_pairs
        else st.just([])
    )
    graph = WeightedGraph(n)
    for u, v in chosen:
        length = draw(st.integers(min_value=1, max_value=9))
        quality = draw(st.integers(min_value=1, max_value=max_quality))
        graph.add_edge(u, v, float(length), float(quality))
    return graph


@st.composite
def digraphs_with_query(draw):
    graph = draw(quality_digraphs())
    n = graph.num_vertices
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1))
    w = draw(st.sampled_from(QUERY_CONSTRAINTS))
    return graph, s, t, w


@st.composite
def weighted_graphs_with_query(draw):
    graph = draw(quality_weighted_graphs())
    n = graph.num_vertices
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1))
    w = draw(st.sampled_from(QUERY_CONSTRAINTS))
    return graph, s, t, w


def brute_force(graph: Graph, s: int, t: int, w: float) -> float:
    return ConstrainedBFS(graph).distance(s, t, w)


class TestCrossEngineAgreement:
    @given(graphs_with_query())
    def test_wc_index_matches_brute_force(self, case):
        graph, s, t, w = case
        expected = brute_force(graph, s, t, w)
        index = build_wc_index_plus(graph, "degree")
        assert index.distance(s, t, w) == expected

    @given(graphs_with_query())
    def test_all_kernels_and_orderings_agree(self, case):
        graph, s, t, w = case
        expected = brute_force(graph, s, t, w)
        for ordering in ("degree", "treedec", "hybrid"):
            index = WCIndexBuilder(graph, ordering).build()
            for kernel in ("naive", "binary", "linear"):
                assert index.distance_with(s, t, w, kernel) == expected

    @given(graphs_with_query())
    def test_frozen_engine_agrees(self, case):
        # Frozen == list == brute force, on every flat kernel and the
        # batch path.
        graph, s, t, w = case
        expected = brute_force(graph, s, t, w)
        index = build_wc_index_plus(graph, "degree")
        frozen = index.freeze()
        assert frozen.distance(s, t, w) == expected
        for kernel in ("naive", "binary", "linear"):
            assert frozen.distance_with(s, t, w, kernel) == expected
        assert frozen.distance_many([(s, t, w)]) == [expected]

    @given(graphs_with_query())
    def test_baselines_agree(self, case):
        graph, s, t, w = case
        expected = brute_force(graph, s, t, w)
        assert PartitionedBFS(graph).distance(s, t, w) == expected
        assert PartitionedDijkstra(graph).distance(s, t, w) == expected
        assert BidirectionalConstrainedBFS(graph).distance(s, t, w) == expected
        assert NaivePerQualityIndex(graph).distance(s, t, w) == expected
        assert LCRAdaptIndex(graph).distance(s, t, w) == expected


class TestExtensionEngineAgreement:
    """Frozen directed/weighted engines == their list engines == the
    online oracles, on every engine path (single, batch, post-round-trip),
    including unreachable pairs and quality-infeasible constraints."""

    @given(digraphs_with_query())
    def test_directed_engines_agree(self, case):
        graph, s, t, w = case
        expected = DirectedConstrainedBFS(graph).distance(s, t, w)
        index = DirectedWCIndex(graph)
        frozen = index.freeze()
        assert index.distance(s, t, w) == expected
        assert frozen.distance(s, t, w) == expected
        assert index.distance_many([(s, t, w)]) == [expected]
        assert frozen.distance_many([(s, t, w)]) == [expected]

    @given(weighted_graphs_with_query())
    def test_weighted_engines_agree(self, case):
        graph, s, t, w = case
        expected = constrained_dijkstra(graph, s, t, w)
        index = WeightedWCIndex(graph)
        frozen = index.freeze()
        assert index.distance(s, t, w) == expected
        assert frozen.distance(s, t, w) == expected
        assert index.distance_many([(s, t, w)]) == [expected]
        assert frozen.distance_many([(s, t, w)]) == [expected]

    @given(digraphs_with_query())
    def test_directed_binary_round_trip_preserves_answers(self, case):
        import io

        from repro.core.serialize import load_frozen, save_frozen

        graph, s, t, w = case
        index = DirectedWCIndex(graph)
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        buffer.seek(0)
        loaded = load_frozen(buffer)
        assert loaded.raw_sides() == index.freeze().raw_sides()
        assert loaded.distance(s, t, w) == index.distance(s, t, w)

    @given(weighted_graphs_with_query())
    def test_weighted_binary_round_trip_preserves_answers(self, case):
        import io

        from repro.core.serialize import load_frozen, save_frozen

        graph, s, t, w = case
        index = WeightedWCIndex(graph)
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        buffer.seek(0)
        loaded = load_frozen(buffer)
        assert loaded.raw_arrays() == index.freeze().raw_arrays()
        assert loaded.distance(s, t, w) == index.distance(s, t, w)

    @given(quality_digraphs(max_vertices=8))
    def test_directed_freeze_thaw_is_identity(self, graph):
        index = DirectedWCIndex(graph)
        frozen = index.freeze()
        assert frozen.thaw().freeze().raw_sides() == frozen.raw_sides()

    @given(quality_weighted_graphs(max_vertices=8))
    def test_weighted_freeze_thaw_is_identity(self, graph):
        index = WeightedWCIndex(graph)
        frozen = index.freeze()
        assert frozen.thaw().freeze().raw_arrays() == frozen.raw_arrays()


class TestStructuralInvariants:
    @given(quality_graphs())
    def test_theorem3_holds(self, graph):
        index = build_wc_index_plus(graph, "degree")
        assert theorem3_violations(index) == []

    @given(quality_graphs())
    def test_minimality_holds(self, graph):
        index = build_wc_index_plus(graph, "degree")
        assert dominated_entries(index) == []
        assert unnecessary_entries(index) == []

    @given(quality_graphs())
    def test_every_entry_is_a_real_path(self, graph):
        index = build_wc_index_plus(graph, "degree")
        oracle = ConstrainedBFS(graph)
        for v, hub, d, w in index.iter_entries():
            if hub == v:
                assert d == 0
                continue
            assert oracle.distance(hub, v, w) == d

    @given(quality_graphs())
    def test_symmetry(self, graph):
        # Undirected distances are symmetric; the index must agree.
        index = build_wc_index_plus(graph, "degree")
        n = graph.num_vertices
        for s in range(n):
            for t in range(s + 1, n):
                for w in (1.0, 2.5, 4.0):
                    assert index.distance(s, t, w) == index.distance(t, s, w)

    @given(quality_graphs())
    def test_monotonicity_in_w(self, graph):
        # Raising the constraint can never shorten the distance.
        index = build_wc_index_plus(graph, "degree")
        n = graph.num_vertices
        for s in range(n):
            for t in range(n):
                previous = -1.0
                for w in (0.5, 1.0, 2.0, 3.0, 4.0, 5.0):
                    current = index.distance(s, t, w)
                    assert current >= previous
                    previous = current


class TestPathProperties:
    @given(graphs_with_query())
    def test_reconstructed_path_is_shortest_and_valid(self, case):
        graph, s, t, w = case
        expected = brute_force(graph, s, t, w)
        pindex = WCPathIndex.build(graph, "degree")
        path = pindex.path(s, t, w)
        if expected == INF:
            assert path is None
        else:
            assert path is not None
            assert path[0] == s and path[-1] == t
            assert path_length(path) == expected
            if len(path) > 1:
                assert is_valid_w_path(graph, path, w)


class TestSerializationProperties:
    @given(quality_graphs())
    def test_round_trip_preserves_everything(self, graph):
        import io

        from repro.core.serialize import load_index, save_index

        index = build_wc_index_plus(graph, "degree")
        buffer = io.StringIO()
        save_index(index, buffer)
        buffer.seek(0)
        loaded = load_index(buffer)
        assert loaded.order == index.order
        for v in range(graph.num_vertices):
            assert loaded.entries_of(v) == index.entries_of(v)

    @given(quality_graphs())
    def test_binary_round_trip_preserves_everything(self, graph):
        import io

        from repro.core.serialize import load_frozen, save_frozen

        index = build_wc_index_plus(graph, "degree")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        buffer.seek(0)
        loaded = load_frozen(buffer)
        assert loaded.order == index.order
        for v in range(graph.num_vertices):
            assert loaded.entries_of(v) == index.entries_of(v)

    @given(quality_graphs())
    def test_freeze_thaw_freeze_is_identity(self, graph):
        index = build_wc_index_plus(graph, "degree")
        frozen = index.freeze()
        refrozen = frozen.thaw().freeze()
        assert frozen.raw_arrays()[:4] == refrozen.raw_arrays()[:4]


class TestProfileProperties:
    @given(graphs_with_query())
    def test_profile_consistent_with_distance(self, case):
        from repro.core.profile import (
            distance_profile,
            profile_distance,
            profile_is_staircase,
        )

        graph, s, t, w = case
        index = build_wc_index_plus(graph, "degree")
        profile = distance_profile(index, s, t)
        assert profile_is_staircase(profile)
        assert profile_distance(profile, w) == index.distance(s, t, w)

    @given(quality_graphs(max_vertices=10))
    def test_widest_path_is_max_feasible_threshold(self, graph):
        from repro.core.profile import widest_path_quality

        index = build_wc_index_plus(graph, "degree")
        for s in range(graph.num_vertices):
            for t in range(graph.num_vertices):
                if s == t:
                    continue
                widest = widest_path_quality(index, s, t)
                if widest == -INF:
                    assert index.distance(s, t, 0.0) == INF
                else:
                    assert index.distance(s, t, widest) != INF
                    assert index.distance(s, t, widest + 0.5) == INF


class TestDynamicProperties:
    @settings(max_examples=20)
    @given(
        quality_graphs(max_vertices=9),
        st.lists(
            st.tuples(
                st.integers(0, 8), st.integers(0, 8), st.integers(1, 4)
            ),
            min_size=1,
            max_size=5,
        ),
    )
    def test_insertions_stay_exact(self, graph, insertions):
        dyn = DynamicWCIndex(graph.copy(), ordering="degree")
        n = graph.num_vertices
        for u, v, q in insertions:
            u, v = u % n, v % n
            if u == v:
                continue
            dyn.insert_edge(u, v, float(q))
        oracle = ConstrainedBFS(dyn.graph)
        for w in (0.5, 1.0, 2.0, 3.0, 4.0, 4.5):
            for s in range(n):
                truth = oracle.single_source(s, w)
                for t in range(n):
                    assert dyn.distance(s, t, w) == truth[t]
