"""Tests for quality constrained shortest *path* reconstruction."""

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.online import ConstrainedBFS
from repro.core import build_wc_index_plus
from repro.core.paths import (
    WCPathIndex,
    is_valid_w_path,
    path_bottleneck,
    path_length,
)
from repro.graph.generators import paper_figure3, path_graph

INF = float("inf")


class TestPathHelpers:
    def test_path_length(self):
        assert path_length([3]) == 0
        assert path_length([0, 1, 2]) == 2

    def test_path_bottleneck(self):
        g = paper_figure3()
        assert path_bottleneck(g, [0, 1, 2]) == 3.0
        assert path_bottleneck(g, [5]) == INF

    def test_is_valid_w_path(self):
        g = paper_figure3()
        assert is_valid_w_path(g, [0, 1, 2, 8 - 5], 3.0)  # v0-v1-v2-v3
        assert not is_valid_w_path(g, [0, 2], 1.0)  # not an edge
        assert not is_valid_w_path(g, [0, 3], 2.0)  # quality 1 < 2
        assert not is_valid_w_path(g, [], 1.0)


class TestConstruction:
    def test_requires_parent_tracking(self):
        index = build_wc_index_plus(paper_figure3())
        with pytest.raises(ValueError, match="track_parents"):
            WCPathIndex(index)

    def test_build_classmethod(self):
        pindex = WCPathIndex.build(paper_figure3(), "identity")
        assert pindex.index.tracks_parents


class TestPaperExamplePaths:
    def test_example1_shortest_2_constrained_path(self):
        # Example 2: v1 -> v2 -> v8... transcribed to Figure 3 ids: the
        # shortest 2-constrained v0-v8 analogue is v0-v1-v2-v3 at w=3.
        pindex = WCPathIndex.build(paper_figure3(), "identity")
        g = paper_figure3()
        path = pindex.path(0, 3, 3.0)
        assert path == [0, 1, 2, 3]
        assert path_bottleneck(g, path) >= 3.0

    def test_quality_changes_route(self):
        pindex = WCPathIndex.build(paper_figure3(), "identity")
        assert pindex.path(0, 3, 1.0) == [0, 3]  # direct edge, quality 1
        assert path_length(pindex.path(0, 3, 2.0)) == 2  # via v1
        assert path_length(pindex.path(0, 3, 3.0)) == 3  # via v1, v2

    def test_unreachable_returns_none(self):
        pindex = WCPathIndex.build(paper_figure3(), "identity")
        assert pindex.path(0, 5, 99.0) is None

    def test_trivial_path(self):
        pindex = WCPathIndex.build(paper_figure3(), "identity")
        assert pindex.path(4, 4, 1.0) == [4]

    def test_distance_matches_index(self):
        pindex = WCPathIndex.build(paper_figure3(), "identity")
        assert pindex.distance(2, 5, 2.0) == 2.0


class TestRandomizedPaths:
    @pytest.mark.parametrize("ordering", ["degree", "treedec", "hybrid"])
    def test_paths_valid_and_shortest(self, ordering):
        for trial in range(8):
            g = random_graph(trial, max_n=14)
            pindex = WCPathIndex.build(g, ordering)
            oracle = ConstrainedBFS(g)
            for w in thresholds_for(g):
                for s in g.vertices():
                    for t in g.vertices():
                        expected = oracle.distance(s, t, w)
                        path = pindex.path(s, t, w)
                        if expected == INF:
                            assert path is None, (trial, s, t, w)
                            continue
                        assert path is not None, (trial, s, t, w)
                        assert path[0] == s and path[-1] == t
                        assert path_length(path) == expected, (trial, s, t, w)
                        if len(path) > 1:
                            assert is_valid_w_path(g, path, w), (trial, s, t, w)

    def test_long_path_graph(self):
        g = path_graph(40)
        pindex = WCPathIndex.build(g, "treedec")
        path = pindex.path(0, 39, 1.0)
        assert path == list(range(40))
