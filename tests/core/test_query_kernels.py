"""Tests for the three query kernels (Algorithms 2/4/5) in isolation."""

import pytest

from repro.core.query import (
    group_end,
    merge_binary,
    merge_linear,
    merge_linear_with_witness,
    merge_naive,
)

INF = float("inf")
KERNELS = [merge_naive, merge_binary, merge_linear]


class TestGroupEnd:
    def test_single_group(self):
        assert group_end([3, 3, 3], 0) == 3

    def test_multiple_groups(self):
        hubs = [0, 0, 1, 2, 2, 2]
        assert group_end(hubs, 0) == 2
        assert group_end(hubs, 2) == 3
        assert group_end(hubs, 3) == 6

    def test_last_element(self):
        assert group_end([0, 1], 1) == 2


def label(*entries):
    """Build parallel lists from (hub, d, w) triples."""
    hubs = [e[0] for e in entries]
    dists = [float(e[1]) for e in entries]
    quals = [float(e[2]) for e in entries]
    return hubs, dists, quals


class TestKernelsAgree:
    CASES = [
        # (side_s, side_t, w, expected)
        (
            label((0, 0, INF), (1, 2, 3)),
            label((0, 4, 2), (1, 1, 5)),
            2.0,
            3.0,  # via hub 1: 2+1
        ),
        (
            label((0, 1, 1), (0, 2, 2), (0, 3, 5)),
            label((0, 1, 1), (0, 4, 9)),
            2.0,
            6.0,  # s needs (2,2), t needs (4,9)
        ),
        (
            label((0, 1, 1)),
            label((1, 1, 9)),
            1.0,
            INF,  # no common hub
        ),
        (
            label((2, 5, 4)),
            label((2, 7, 4)),
            4.0,
            12.0,
        ),
        (
            label((2, 5, 4)),
            label((2, 7, 4)),
            4.5,
            INF,  # both entries fail the constraint
        ),
        (label(), label((0, 1, 1)), 1.0, INF),  # empty side
    ]

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("case", range(len(CASES)))
    def test_known_answers(self, kernel, case):
        (hs, ds, qs), (ht, dt, qt), w, expected = self.CASES[case]
        assert kernel(hs, ds, qs, ht, dt, qt, w) == expected

    def test_min_over_multiple_hubs(self):
        side_s = label((0, 3, 9), (1, 1, 9))
        side_t = label((0, 1, 9), (1, 2, 9))
        for kernel in KERNELS:
            assert kernel(*side_s, *side_t, 1.0) == 3.0  # hub 1: 1+2

    def test_theorem3_first_feasible_is_optimal(self):
        # Within a group sorted by (d asc, w asc), the first entry with
        # w >= threshold has the minimum feasible distance.
        side_s = label((0, 1, 1), (0, 2, 3), (0, 5, 7))
        side_t = label((0, 0, INF))
        for kernel in KERNELS:
            assert kernel(*side_s, *side_t, 2.0) == 2.0
            assert kernel(*side_s, *side_t, 3.5) == 5.0


class TestWitness:
    def test_witness_matches_linear(self):
        side_s = label((0, 1, 1), (0, 2, 3), (1, 1, 4))
        side_t = label((0, 2, 5), (1, 2, 2))
        for w in (1.0, 2.0, 3.0, 4.5):
            expected = merge_linear(*side_s, *side_t, w)
            dist, a, b = merge_linear_with_witness(*side_s, *side_t, w)
            assert dist == expected
            if dist != INF:
                assert side_s[0][a] == side_t[0][b]  # same hub
                assert side_s[1][a] + side_t[1][b] == dist
                assert side_s[2][a] >= w and side_t[2][b] >= w


class TestRandomizedAgreement:
    def test_kernels_agree_on_random_staircases(self):
        import random

        rng = random.Random(42)
        for _ in range(200):
            def random_label():
                entries = []
                for hub in sorted(rng.sample(range(6), rng.randint(0, 4))):
                    d, w = rng.randint(0, 3), rng.randint(1, 3)
                    staircase = []
                    for _ in range(rng.randint(1, 3)):
                        staircase.append((hub, d, w))
                        d += rng.randint(1, 3)
                        w += rng.randint(1, 3)
                    entries.extend(staircase)
                return label(*entries)

            side_s, side_t = random_label(), random_label()
            for w in (0.5, 1.0, 2.0, 3.5, 9.0):
                results = {k(*side_s, *side_t, w) for k in KERNELS}
                assert len(results) == 1, (side_s, side_t, w, results)
