"""Tests for Pareto profile queries."""

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.online import ConstrainedBFS
from repro.core import build_wc_index_plus
from repro.core.profile import (
    bottleneck_quality,
    distance_profile,
    profile_distance,
    profile_is_staircase,
    widest_path_quality,
)
from repro.graph.generators import paper_figure3, path_graph
from repro.graph.graph import Graph

INF = float("inf")


class TestProfileOnPaperExample:
    @pytest.fixture
    def index(self):
        return build_wc_index_plus(paper_figure3(), "identity")

    def test_profile_v0_v4(self, index):
        # From Table II: dist_1 = 2, dist_2 = 3, dist_3 = 4, dist_>3 = INF.
        assert distance_profile(index, 0, 4) == [
            (1.0, 2.0),
            (2.0, 3.0),
            (3.0, 4.0),
        ]

    def test_profile_evaluates_like_distance(self, index):
        profile = distance_profile(index, 0, 4)
        for w in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5):
            assert profile_distance(profile, w) == index.distance(0, 4, w)

    def test_self_profile(self, index):
        assert distance_profile(index, 3, 3) == [(INF, 0.0)]

    def test_staircase_property(self, index):
        for s in range(6):
            for t in range(6):
                assert profile_is_staircase(distance_profile(index, s, t))

    def test_bottleneck_quality(self, index):
        # Within 2 hops of v0..v4: only quality-1 paths exist.
        assert bottleneck_quality(index, 0, 4, 2.0) == 1.0
        assert bottleneck_quality(index, 0, 4, 3.0) == 2.0
        assert bottleneck_quality(index, 0, 4, 99.0) == 3.0
        assert bottleneck_quality(index, 0, 4, 1.0) == -INF
        assert bottleneck_quality(index, 2, 2, 0.0) == INF

    def test_widest_path_quality(self, index):
        assert widest_path_quality(index, 0, 4) == 3.0
        assert widest_path_quality(index, 1, 2) == 5.0  # the direct edge


class TestProfileAgainstBruteForce:
    @pytest.mark.parametrize("trial", range(10))
    def test_profile_matches_bfs_at_every_threshold(self, trial):
        g = random_graph(trial)
        index = build_wc_index_plus(g, "degree")
        oracle = ConstrainedBFS(g)
        for s in g.vertices():
            for t in g.vertices():
                profile = distance_profile(index, s, t)
                assert profile_is_staircase(profile)
                for w in thresholds_for(g):
                    assert profile_distance(profile, w) == oracle.distance(
                        s, t, w
                    ), (trial, s, t, w)

    def test_disconnected_pair_empty_profile(self):
        g = Graph(4, [(0, 1, 2.0), (2, 3, 2.0)])
        index = build_wc_index_plus(g)
        assert distance_profile(index, 0, 3) == []
        assert widest_path_quality(index, 0, 3) == -INF

    def test_profile_length_bounded_by_distinct_qualities(self):
        for trial in range(6):
            g = random_graph(trial, num_qualities=3)
            index = build_wc_index_plus(g, "degree")
            for s in g.vertices():
                for t in g.vertices():
                    if s == t:
                        continue
                    assert len(distance_profile(index, s, t)) <= 3


class TestProfileHelpers:
    def test_profile_distance_empty(self):
        assert profile_distance([], 1.0) == INF

    def test_staircase_checker_rejects_bad(self):
        assert not profile_is_staircase([(1.0, 2.0), (2.0, 2.0)])
        assert not profile_is_staircase([(2.0, 1.0), (1.0, 2.0)])
        assert profile_is_staircase([])
        assert profile_is_staircase([(1.0, 1.0)])

    def test_path_graph_profile(self):
        g = path_graph(4, [3.0, 1.0, 2.0])
        index = build_wc_index_plus(g)
        assert distance_profile(index, 0, 3) == [(1.0, 3.0)]
        assert distance_profile(index, 0, 1) == [(3.0, 1.0)]
