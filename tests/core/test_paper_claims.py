"""Tests encoding specific claims made in the paper's prose.

Each test cites the statement it checks, so a reader can audit the
reproduction claim by claim.
"""

import pytest

from tests.helpers import random_graph

from repro.baselines import NaivePerQualityIndex
from repro.core import WCIndexBuilder, build_wc_index_plus
from repro.core.paths import path_bottleneck, path_length
from repro.core.query import group_end
from repro.graph.generators import paper_figure3
from repro.graph.graph import Graph

INF = float("inf")


class TestExample1Figure2Facts:
    """Example 1 describes Figure 2; its transferable facts are the
    definitions it exercises, checked here on Figure 3's graph."""

    def test_w_path_definition(self):
        # "a w-path ... each of its edges has a quality not smaller than w"
        g = paper_figure3()
        path = [0, 1, 2, 3]  # qualities 3, 5, 4
        assert path_bottleneck(g, path) == 3.0
        assert path_bottleneck(g, path) >= 3.0  # it is a 3-path
        assert not path_bottleneck(g, path) >= 4.0  # but not a 4-path


class TestExample2Dominance:
    """Definition 4 / Example 2 dominance relations on Figure 3."""

    def test_same_quality_shorter_dominates(self):
        g = paper_figure3()
        p_short = [0, 3, 4]  # len 2, bottleneck 1
        p_long = [0, 3, 5, 4]  # len 3, bottleneck 1
        assert path_bottleneck(g, p_short) == path_bottleneck(g, p_long) == 1.0
        assert path_length(p_short) < path_length(p_long)

    def test_same_length_higher_quality_dominates(self):
        g = paper_figure3()
        p_good = [1, 2, 3]  # len 2, bottleneck 4
        p_bad = [1, 0, 3]  # len 2, bottleneck 1
        assert path_length(p_good) == path_length(p_bad)
        assert path_bottleneck(g, p_good) > path_bottleneck(g, p_bad)

    def test_minimal_paths_are_the_label_entries(self):
        # "{v1 -> v2 -> v3} is both the minimal 3-path and minimal 4-path"
        index = build_wc_index_plus(paper_figure3(), "identity")
        assert index.distance(1, 3, 3.0) == 2.0
        assert index.distance(1, 3, 4.0) == 2.0
        assert index.distance(1, 3, 5.0) == INF


class TestExample3QueryWalkthrough:
    """The worked query Q(v2, v5, 2) of Example 3."""

    def test_intermediate_candidates(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        # The walkthrough first finds 5 via hub v0, then 3 via hub v1,
        # finally 2 via hub v2; the index must return the final minimum.
        assert index.distance(2, 5, 2.0) == 2.0
        # Hub-v0 route alone would give 2 + 3:
        entries5 = dict()
        for hub, d, w in index.entries_of(5):
            if w >= 2.0:
                entries5.setdefault(hub, d)
        entries2 = dict()
        for hub, d, w in index.entries_of(2):
            if w >= 2.0:
                entries2.setdefault(hub, d)
        assert entries2[0] + entries5[0] == 5.0
        assert entries2[1] + entries5[1] == 3.0


class TestIndexSizeBound:
    """Section IV.B: 'The size of the index is bounded by
    sum over pairs of min(D, |w|)' — per (vertex, hub) group, at most one
    entry per distinct quality value and at most one per distance."""

    @pytest.mark.parametrize("trial", range(8))
    def test_group_sizes_bounded(self, trial):
        g = random_graph(trial, num_qualities=3)
        index = build_wc_index_plus(g, "degree")
        num_w = max(1, g.num_distinct_qualities())
        diameter_bound = g.num_vertices  # crude D upper bound
        for v in g.vertices():
            hubs, _, _ = index.label_lists(v)
            i = 0
            while i < len(hubs):
                j = group_end(hubs, i)
                assert j - i <= min(diameter_bound, num_w), (trial, v)
                i = j


class TestObservation1Redundancy:
    """Observation 1: 'numerous entries in the separate indices are
    redundant' — the naive method stores strictly more than WC-INDEX on
    multi-quality graphs."""

    def test_naive_stores_more(self):
        g = Graph(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 4, 1.0),
                (0, 4, 2.0),
            ],
        )
        naive = NaivePerQualityIndex(g)
        wc = build_wc_index_plus(g, "degree")
        assert naive.entry_count() > wc.entry_count()

    @pytest.mark.parametrize("trial", range(6))
    def test_naive_stores_at_least_as_much_on_random_graphs(self, trial):
        g = random_graph(trial, num_qualities=4)
        naive = NaivePerQualityIndex(g, order=list(range(g.num_vertices)))
        wc = WCIndexBuilder(g, "identity").build()
        assert naive.entry_count() >= wc.entry_count()


class TestComplexityShape:
    """Section III: the naive method's cost scales with |w| while
    WC-INDEX's does not (same graph, more quality levels)."""

    def test_naive_entries_grow_with_w(self):
        from repro.graph.generators import grid_road_network

        low = grid_road_network(6, 6, num_qualities=2, seed=3)
        high = grid_road_network(6, 6, num_qualities=8, seed=3)
        naive_low = NaivePerQualityIndex(low).entry_count()
        naive_high = NaivePerQualityIndex(high).entry_count()
        assert naive_high > 2 * naive_low

    def test_wc_entries_grow_slower_with_w(self):
        from repro.graph.generators import grid_road_network

        low = grid_road_network(6, 6, num_qualities=2, seed=3)
        high = grid_road_network(6, 6, num_qualities=8, seed=3)
        naive_ratio = (
            NaivePerQualityIndex(high).entry_count()
            / NaivePerQualityIndex(low).entry_count()
        )
        wc_ratio = (
            build_wc_index_plus(high).entry_count()
            / build_wc_index_plus(low).entry_count()
        )
        assert wc_ratio < naive_ratio
