"""Tests for the WCIndex label container."""

import pytest

from repro.core.labels import BYTES_PER_ENTRY, WCIndex

INF = float("inf")


def make_index(order=(0, 1, 2), track_parents=False):
    return WCIndex(list(order), track_parents=track_parents)


class TestContainer:
    def test_order_and_rank_are_inverse(self):
        idx = make_index([2, 0, 1])
        assert idx.order == [2, 0, 1]
        assert idx.rank == [1, 2, 0]
        assert idx.num_vertices == 3

    def test_append_and_introspect(self):
        idx = make_index()
        idx.append_entry(1, 0, 2.0, 3.0)
        assert idx.entries_of(1) == [(0, 2.0, 3.0)]
        assert idx.label_size(1) == 1
        assert idx.entry_count() == 1
        assert idx.max_label_size() == 1

    def test_iter_entries(self):
        idx = make_index()
        idx.append_entry(0, 0, 0.0, INF)
        idx.append_entry(1, 0, 1.0, 2.0)
        assert list(idx.iter_entries()) == [
            (0, 0, 0.0, INF),
            (1, 0, 1.0, 2.0),
        ]

    def test_size_bytes_model(self):
        idx = make_index()
        idx.append_entry(0, 0, 0.0, INF)
        idx.append_entry(1, 0, 1.0, 1.0)
        assert idx.size_bytes() == 2 * BYTES_PER_ENTRY

    def test_vertex_range_checked(self):
        idx = make_index()
        with pytest.raises(ValueError):
            idx.distance(0, 5, 1.0)
        with pytest.raises(ValueError):
            idx.entries_of(-1)

    def test_parent_tracking_flag(self):
        bare = make_index()
        assert not bare.tracks_parents
        with pytest.raises(ValueError):
            bare.parent_list(0)
        tracked = make_index(track_parents=True)
        tracked.append_entry(1, 0, 1.0, 2.0, parent=0)
        assert tracked.parent_list(1) == [0]


class TestQueriesOnHandBuiltLabels:
    def make_populated(self):
        # Hub 0 reaches vertex 1 at (d=1, w=5) and vertex 2 at (d=2, w=3)
        # and (d=4, w=6) — a Pareto staircase.
        idx = make_index()
        idx.append_entry(0, 0, 0.0, INF)
        idx.append_entry(1, 0, 1.0, 5.0)
        idx.append_entry(1, 1, 0.0, INF)
        idx.append_entry(2, 0, 2.0, 3.0)
        idx.append_entry(2, 0, 4.0, 6.0)
        idx.append_entry(2, 2, 0.0, INF)
        return idx

    def test_distance_picks_min_feasible(self):
        idx = self.make_populated()
        assert idx.distance(1, 2, 3.0) == 3.0  # 1 + 2
        assert idx.distance(1, 2, 4.0) == 5.0  # needs the (4, 6) entry
        assert idx.distance(1, 2, 5.5) == INF  # w=5 entry on the 1-side fails

    def test_self_distance_zero(self):
        idx = self.make_populated()
        assert idx.distance(2, 2, 100.0) == 0.0

    def test_all_kernels_agree(self):
        idx = self.make_populated()
        for w in (1.0, 3.0, 4.0, 5.5):
            expected = idx.distance(1, 2, w)
            for kernel in ("naive", "binary", "linear"):
                assert idx.distance_with(1, 2, w, kernel) == expected

    def test_unknown_kernel_rejected(self):
        idx = self.make_populated()
        with pytest.raises(ValueError, match="unknown kernel"):
            idx.distance_with(0, 1, 1.0, "quantum")

    def test_reachable(self):
        idx = self.make_populated()
        assert idx.reachable(1, 2, 3.0)
        assert not idx.reachable(1, 2, 9.0)

    def test_witness_indexes(self):
        idx = self.make_populated()
        dist, a, b = idx.distance_with_witness(1, 2, 4.0)
        assert dist == 5.0
        hubs1, dists1, quals1 = idx.label_lists(1)
        hubs2, dists2, quals2 = idx.label_lists(2)
        assert hubs1[a] == hubs2[b] == 0
        assert dists1[a] + dists2[b] == 5.0
        assert min(quals1[a], quals2[b]) >= 4.0

    def test_witness_infeasible(self):
        idx = self.make_populated()
        dist, a, b = idx.distance_with_witness(1, 2, 99.0)
        assert dist == INF
        assert a == b == -1


class TestBatchQueries:
    def test_distance_many_matches_single(self):
        from repro.core import build_wc_index_plus
        from repro.graph.generators import paper_figure3

        index = build_wc_index_plus(paper_figure3(), "identity")
        queries = [
            (0, 4, 1.0),
            (0, 4, 2.0),
            (2, 5, 2.0),
            (3, 3, 9.0),
            (0, 5, 99.0),
        ]
        batch = index.distance_many(queries)
        assert batch == [index.distance(s, t, w) for s, t, w in queries]

    def test_distance_many_accepts_workload(self):
        from repro.core import build_wc_index_plus
        from repro.graph.generators import paper_figure3
        from repro.workloads.queries import random_queries

        g = paper_figure3()
        index = build_wc_index_plus(g, "identity")
        workload = random_queries(g, 25, seed=1)
        assert len(index.distance_many(workload)) == 25

    def test_distance_many_range_checked(self):
        from repro.core import build_wc_index_plus
        from repro.graph.generators import paper_figure3

        index = build_wc_index_plus(paper_figure3())
        with pytest.raises(ValueError):
            index.distance_many([(0, 99, 1.0)])


class TestSortedInsertion:
    def test_insert_into_empty(self):
        idx = make_index()
        assert idx.insert_entry_sorted(1, 0, 2.0, 3.0)
        assert idx.entries_of(1) == [(0, 2.0, 3.0)]

    def test_insert_keeps_hub_order(self):
        idx = make_index()
        idx.append_entry(2, 0, 1.0, 1.0)
        idx.append_entry(2, 2, 0.0, INF)
        assert idx.insert_entry_sorted(2, 1, 3.0, 2.0)
        hubs, _, _ = idx.label_lists(2)
        assert hubs == [0, 1, 2]

    def test_dominated_insert_is_rejected(self):
        idx = make_index()
        idx.append_entry(1, 0, 1.0, 5.0)
        assert not idx.insert_entry_sorted(1, 0, 2.0, 4.0)  # worse both ways
        assert not idx.insert_entry_sorted(1, 0, 1.0, 5.0)  # duplicate
        assert idx.entries_of(1) == [(0, 1.0, 5.0)]

    def test_insert_drops_entries_it_dominates(self):
        idx = make_index()
        idx.append_entry(1, 0, 3.0, 2.0)
        assert idx.insert_entry_sorted(1, 0, 2.0, 3.0)  # dominates existing
        assert idx.entries_of(1) == [(0, 2.0, 3.0)]

    def test_incomparable_entries_coexist_sorted(self):
        idx = make_index()
        idx.append_entry(1, 0, 1.0, 1.0)
        assert idx.insert_entry_sorted(1, 0, 3.0, 4.0)
        assert idx.insert_entry_sorted(1, 0, 2.0, 2.0)
        _, dists, quals = idx.label_lists(1)
        assert dists == [1.0, 2.0, 3.0]
        assert quals == [1.0, 2.0, 4.0]

    def test_insert_with_parents(self):
        idx = make_index(track_parents=True)
        idx.append_entry(1, 0, 3.0, 2.0, parent=5)
        assert idx.insert_entry_sorted(1, 0, 1.0, 1.0, parent=7)
        assert idx.parent_list(1) == [7, 5]
