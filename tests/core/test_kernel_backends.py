"""The pluggable kernel backend layer: dispatch semantics, and the
numpy backend's bit-identical equivalence with the stdlib oracle across
all three frozen families, every attach mode, and the edge cases
(unreachable pairs, infeasible thresholds, empty label sides, the
high-cardinality-w delegation path)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from tests.helpers import random_graph, thresholds_for
from tests.test_properties import (
    QUERY_CONSTRAINTS,
    quality_digraphs,
    quality_graphs,
    quality_weighted_graphs,
)

from repro.core import (
    BACKEND_CHOICES,
    DirectedWCIndex,
    KernelBackend,
    KernelUnavailableError,
    WeightedWCIndex,
    attach_frozen,
    available_backends,
    build_wc_index_plus,
    default_backend_name,
    numpy_available,
    resolve_backend,
    save_frozen,
)
from repro.core import kernels as kernels_module
from repro.graph.generators import gnm_random_graph

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)


@pytest.fixture
def no_numpy(monkeypatch):
    """Simulate a machine without numpy: the single availability probe
    answers None and the instance cache is cleared for the test."""
    monkeypatch.setattr(kernels_module, "_load_numpy", lambda: None)
    monkeypatch.setattr(kernels_module, "_INSTANCES", {})


class TestDispatch:
    def test_choices_cover_both_backends(self):
        assert BACKEND_CHOICES == ("auto", "stdlib", "numpy")

    def test_stdlib_always_available(self):
        assert available_backends()[0] == "stdlib"
        assert resolve_backend("stdlib").name == "stdlib"

    def test_instances_are_shared(self):
        assert resolve_backend("stdlib") is resolve_backend("stdlib")

    def test_auto_and_none_resolve_to_default(self):
        default = default_backend_name()
        assert resolve_backend(None).name == default
        assert resolve_backend("auto").name == default

    def test_instance_passes_through(self):
        backend = resolve_backend("stdlib")
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    @needs_numpy
    def test_numpy_detected_when_installed(self):
        assert available_backends() == ("stdlib", "numpy")
        assert default_backend_name() == "numpy"
        assert resolve_backend("numpy").name == "numpy"

    def test_without_numpy_auto_falls_back(self, no_numpy):
        assert not kernels_module.numpy_available()
        assert kernels_module.available_backends() == ("stdlib",)
        assert kernels_module.default_backend_name() == "stdlib"
        assert kernels_module.resolve_backend("auto").name == "stdlib"

    def test_without_numpy_explicit_numpy_fails_fast(self, no_numpy):
        with pytest.raises(KernelUnavailableError, match="not available"):
            kernels_module.resolve_backend("numpy")

    def test_abstract_backend_is_abstract(self):
        backend = KernelBackend()
        with pytest.raises(NotImplementedError):
            backend.prepare_side(None)
        with pytest.raises(NotImplementedError):
            backend.batch([], None, None, 0)


class TestEngineSelection:
    def test_freeze_reports_backend(self):
        graph = random_graph(0)
        frozen = build_wc_index_plus(graph, "degree").freeze(
            backend="stdlib"
        )
        assert frozen.kernel_backend == "stdlib"

    def test_auto_freeze_picks_default(self):
        graph = random_graph(1)
        frozen = build_wc_index_plus(graph, "degree").freeze()
        assert frozen.kernel_backend == default_backend_name()

    @needs_numpy
    def test_select_backend_switches_and_chains(self):
        graph = random_graph(2)
        frozen = build_wc_index_plus(graph, "degree").freeze(
            backend="stdlib"
        )
        queries = [
            (s, t, w)
            for s in range(graph.num_vertices)
            for t in range(graph.num_vertices)
            for w in thresholds_for(graph)
        ]
        expected = frozen.distance_many(queries)
        assert frozen.select_backend("numpy") is frozen
        assert frozen.kernel_backend == "numpy"
        assert frozen.distance_many(queries) == expected

    def test_explicit_numpy_without_numpy_fails_at_freeze(self, no_numpy):
        graph = random_graph(3)
        index = build_wc_index_plus(graph, "degree")
        with pytest.raises(KernelUnavailableError):
            index.freeze(backend="numpy")


def all_queries(num_vertices, thresholds):
    return [
        (s, t, w)
        for s in range(num_vertices)
        for t in range(num_vertices)
        for w in thresholds
    ]


def assert_backends_agree(index):
    """Freeze once per backend and require bit-identical batches —
    including the unreachable pairs (INF) the sparse strategies
    produce and thresholds above every quality (empty feasible sets)."""
    stdlib_engine = index.freeze(backend="stdlib")
    numpy_engine = index.freeze(backend="numpy")
    queries = all_queries(index.num_vertices, QUERY_CONSTRAINTS)
    assert numpy_engine.distance_many(queries) == (
        stdlib_engine.distance_many(queries)
    )


@needs_numpy
class TestNumpyEquivalence:
    @settings(max_examples=25)
    @given(quality_graphs())
    def test_undirected(self, graph):
        assert_backends_agree(build_wc_index_plus(graph, "degree"))

    @settings(max_examples=20)
    @given(quality_digraphs())
    def test_directed(self, graph):
        assert_backends_agree(DirectedWCIndex(graph))

    @settings(max_examples=20)
    @given(quality_weighted_graphs())
    def test_weighted(self, graph):
        assert_backends_agree(WeightedWCIndex(graph))

    def test_empty_batch(self):
        frozen = build_wc_index_plus(random_graph(4), "degree").freeze(
            backend="numpy"
        )
        assert frozen.distance_many([]) == []

    def test_single_vertex_no_edges(self):
        from repro.graph.graph import Graph

        frozen = build_wc_index_plus(Graph(1), "degree").freeze(
            backend="numpy"
        )
        assert frozen.distance_many([(0, 0, 1.0)]) == [0.0]

    def test_out_of_range_matches_stdlib_message(self):
        index = build_wc_index_plus(random_graph(5), "degree")
        queries = [(0, 0, 1.0), (0, index.num_vertices, 1.0)]
        with pytest.raises(ValueError) as stdlib_err:
            index.freeze(backend="stdlib").distance_many(queries)
        with pytest.raises(ValueError) as numpy_err:
            index.freeze(backend="numpy").distance_many(queries)
        assert str(numpy_err.value) == str(stdlib_err.value)

    def test_negative_vertex_rejected(self):
        frozen = build_wc_index_plus(random_graph(6), "degree").freeze(
            backend="numpy"
        )
        with pytest.raises(ValueError, match="out of range"):
            frozen.distance_many([(-1, 0, 1.0)])

    def test_high_cardinality_w_delegates_identically(self):
        # One distinct threshold per query defeats the per-w slice
        # cache, so the backend hands the whole batch to stdlib — the
        # answers must not change.
        graph = gnm_random_graph(40, 120, seed=11, num_qualities=4)
        index = build_wc_index_plus(graph, "degree")
        import random

        rng = random.Random(13)
        queries = [
            (rng.randrange(40), rng.randrange(40), 1.0 + rng.random() * 3)
            for _ in range(300)
        ]
        assert len({w for _, _, w in queries}) > 64
        assert index.freeze(backend="numpy").distance_many(queries) == (
            index.freeze(backend="stdlib").distance_many(queries)
        )

    def test_infinite_threshold(self):
        # w = inf: no finite quality is feasible, every group is empty.
        index = build_wc_index_plus(random_graph(7), "degree")
        queries = all_queries(index.num_vertices, (float("inf"),))
        numpy_answers = index.freeze(backend="numpy").distance_many(
            queries
        )
        assert numpy_answers == index.freeze(
            backend="stdlib"
        ).distance_many(queries)
        assert all(
            d == (0.0 if s == t else float("inf"))
            for (s, t, _), d in zip(queries, numpy_answers)
        )

    def test_attach_release_after_numpy_queries(self):
        # The numpy side state holds frombuffer exports over the
        # attached views; release() must drop them first or the
        # memoryview release raises BufferError.
        import io

        index = build_wc_index_plus(random_graph(8), "degree")
        buffer = io.BytesIO()
        save_frozen(index.freeze(), buffer)
        engine = attach_frozen(buffer.getvalue(), backend="numpy")
        queries = all_queries(index.num_vertices, (1.0, 2.0, 3.0))
        assert engine.distance_many(queries) == index.freeze(
            backend="stdlib"
        ).distance_many(queries)
        engine.release()
