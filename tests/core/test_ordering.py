"""Tests for vertex ordering strategies (Section IV.D)."""

import pytest

from repro.core.ordering import (
    default_core_threshold,
    degree_order,
    hybrid_order,
    identity_order,
    ordering_names,
    random_order,
    resolve_order,
    treedec_order,
)
from repro.graph.generators import (
    grid_road_network,
    path_graph,
    scale_free_network,
    star_graph,
)
from repro.graph.graph import Graph


class TestDegreeOrder:
    def test_descending_degree(self):
        g = star_graph(4)
        order = degree_order(g)
        assert order[0] == 0
        assert sorted(order) == list(range(5))

    def test_ties_broken_by_id(self):
        g = path_graph(4)  # degrees 1,2,2,1
        assert degree_order(g) == [1, 2, 0, 3]


class TestTreedecOrder:
    def test_permutation(self):
        g = grid_road_network(5, 5, seed=0)
        assert sorted(treedec_order(g)) == list(range(g.num_vertices))

    def test_reverse_elimination(self):
        from repro.graph.treedec import mde_tree_decomposition

        g = grid_road_network(5, 5, seed=0)
        assert treedec_order(g) == list(
            reversed(mde_tree_decomposition(g).elimination_order)
        )

    def test_better_than_identity_on_road(self):
        # The functional claim behind Observation 3: tree-decomposition
        # ordering yields a smaller index than an arbitrary ordering on
        # road-like graphs.
        from repro.core import WCIndexBuilder

        g = grid_road_network(7, 7, seed=0)
        treedec_entries = WCIndexBuilder(g, "treedec").build().entry_count()
        identity_entries = WCIndexBuilder(g, "identity").build().entry_count()
        assert treedec_entries < identity_entries


class TestHybridOrder:
    def test_permutation(self):
        g = scale_free_network(80, 3, seed=1)
        assert sorted(hybrid_order(g)) == list(range(80))

    def test_core_precedes_periphery(self):
        g = scale_free_network(120, 3, seed=2)
        threshold = default_core_threshold(g)
        order = hybrid_order(g)
        core = {v for v in g.vertices() if g.degree(v) > threshold}
        if core:  # hubs exist in a BA graph of this size
            head = order[: len(core)]
            assert set(head) == core

    def test_core_sorted_by_degree(self):
        g = scale_free_network(150, 3, seed=3)
        threshold = default_core_threshold(g)
        order = hybrid_order(g)
        core = [v for v in order if g.degree(v) > threshold]
        degrees = [g.degree(v) for v in core]
        assert degrees == sorted(degrees, reverse=True)

    def test_road_network_has_empty_core(self):
        # Max degree on a grid stays below the default threshold, so hybrid
        # degenerates to pure tree-decomposition ordering (Observation 3).
        g = grid_road_network(8, 8, seed=1)
        assert hybrid_order(g) == treedec_order(g) or sorted(
            hybrid_order(g)
        ) == list(range(g.num_vertices))
        assert default_core_threshold(g) >= g.max_degree()

    def test_explicit_threshold(self):
        g = star_graph(20)
        order = hybrid_order(g, degree_threshold=10)
        assert order[0] == 0  # only the hub exceeds 10

    def test_all_core(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        order = hybrid_order(g, degree_threshold=0)
        assert sorted(order) == [0, 1, 2]


class TestResolver:
    def test_names(self):
        assert set(ordering_names()) == {
            "degree",
            "treedec",
            "hybrid",
            "betweenness",
            "identity",
            "random",
        }

    def test_resolve_by_name(self):
        g = path_graph(5)
        assert resolve_order(g, "identity") == [0, 1, 2, 3, 4]
        assert resolve_order(g, "degree") == degree_order(g)

    def test_resolve_unknown_name(self):
        with pytest.raises(ValueError, match="unknown ordering"):
            resolve_order(path_graph(3), "zigzag")

    def test_resolve_sequence(self):
        g = path_graph(3)
        assert resolve_order(g, [2, 1, 0]) == [2, 1, 0]

    def test_resolve_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            resolve_order(path_graph(3), [0, 1])

    def test_resolve_callable(self):
        g = path_graph(3)
        assert resolve_order(g, lambda graph: [2, 0, 1]) == [2, 0, 1]

    def test_random_order_deterministic_by_seed(self):
        g = path_graph(10)
        assert random_order(g, seed=1) == random_order(g, seed=1)
        assert random_order(g, seed=1) != random_order(g, seed=2)

    def test_identity(self):
        assert identity_order(path_graph(4)) == [0, 1, 2, 3]
