"""Tests for the weighted WC-INDEX (constrained Dijkstra construction)."""

import pytest

from repro.core.weighted import (
    WeightedWCIndex,
    constrained_dijkstra,
    weighted_degree_order,
)
from repro.core.labels import BYTES_PER_ENTRY
from repro.graph.weighted import WeightedGraph

INF = float("inf")


def random_weighted_graph(trial: int, max_n: int = 12) -> WeightedGraph:
    import random

    rng = random.Random(trial)
    n = rng.randint(2, max_n)
    g = WeightedGraph(n)
    for _ in range(rng.randint(0, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(
                u, v, float(rng.randint(1, 9)), float(rng.randint(1, 4))
            )
    return g


class TestWeightedCorrectness:
    @pytest.mark.parametrize("trial", range(15))
    def test_matches_constrained_dijkstra(self, trial):
        g = random_weighted_graph(trial)
        index = WeightedWCIndex(g)
        qualities = g.distinct_qualities() or [1.0]
        for w in qualities + [qualities[-1] + 1, 0.5]:
            for s in g.vertices():
                for t in g.vertices():
                    assert index.distance(s, t, w) == constrained_dijkstra(
                        g, s, t, w
                    ), (trial, s, t, w)

    def test_length_vs_hops_tradeoff(self):
        # Direct heavy edge vs two light edges: Dijkstra semantics.
        g = WeightedGraph(
            3, [(0, 2, 10.0, 5.0), (0, 1, 2.0, 5.0), (1, 2, 3.0, 5.0)]
        )
        index = WeightedWCIndex(g)
        assert index.distance(0, 2, 1.0) == 5.0

    def test_quality_forces_longer_route(self):
        g = WeightedGraph(
            3, [(0, 2, 1.0, 1.0), (0, 1, 5.0, 3.0), (1, 2, 5.0, 3.0)]
        )
        index = WeightedWCIndex(g)
        assert index.distance(0, 2, 1.0) == 1.0
        assert index.distance(0, 2, 2.0) == 10.0

    def test_fractional_lengths(self):
        g = WeightedGraph(3, [(0, 1, 0.5, 1.0), (1, 2, 0.25, 1.0)])
        index = WeightedWCIndex(g)
        assert index.distance(0, 2, 1.0) == 0.75

    def test_unreachable(self):
        g = WeightedGraph(3, [(0, 1, 1.0, 1.0)])
        index = WeightedWCIndex(g)
        assert index.distance(0, 2, 1.0) == INF


class TestWeightedStructure:
    def test_order_validation(self):
        g = WeightedGraph(2, [(0, 1, 1.0, 1.0)])
        with pytest.raises(ValueError):
            WeightedWCIndex(g, order=[0, 0])

    def test_weighted_degree_order(self):
        g = WeightedGraph(
            3, [(0, 1, 1.0, 1.0), (0, 2, 1.0, 1.0)]
        )
        assert weighted_degree_order(g)[0] == 0

    def test_query_range_checked(self):
        g = WeightedGraph(2, [(0, 1, 1.0, 1.0)])
        index = WeightedWCIndex(g)
        with pytest.raises(ValueError):
            index.distance(5, 0, 1.0)

    def test_theorem3_staircase_in_labels(self):
        # Per (vertex, hub) group: distances and qualities both ascending.
        for trial in range(6):
            g = random_weighted_graph(trial)
            index = WeightedWCIndex(g)
            for v in g.vertices():
                entries = index.entries_of(v)
                by_hub = {}
                for hub, d, q in entries:
                    by_hub.setdefault(hub, []).append((d, q))
                for staircase in by_hub.values():
                    for (d1, q1), (d2, q2) in zip(staircase, staircase[1:]):
                        assert d2 > d1 and q2 > q1, (trial, v, staircase)

    def test_size_accounting(self):
        g = WeightedGraph(2, [(0, 1, 1.0, 1.0)])
        index = WeightedWCIndex(g)
        assert index.size_bytes() == BYTES_PER_ENTRY * index.entry_count()
        assert "WeightedWCIndex" in repr(index)


class TestWeightedPaths:
    def test_requires_parent_tracking(self):
        g = WeightedGraph(2, [(0, 1, 1.0, 1.0)])
        index = WeightedWCIndex(g)
        with pytest.raises(ValueError, match="track_parents"):
            index.path(0, 1, 1.0)

    def test_picks_cheaper_route(self):
        g = WeightedGraph(
            3, [(0, 2, 10.0, 5.0), (0, 1, 2.0, 5.0), (1, 2, 3.0, 5.0)]
        )
        index = WeightedWCIndex(g, track_parents=True)
        assert index.path(0, 2, 1.0) == [0, 1, 2]

    def test_quality_forces_expensive_route(self):
        g = WeightedGraph(
            3, [(0, 2, 1.0, 1.0), (0, 1, 5.0, 3.0), (1, 2, 5.0, 3.0)]
        )
        index = WeightedWCIndex(g, track_parents=True)
        assert index.path(0, 2, 1.0) == [0, 2]
        assert index.path(0, 2, 2.0) == [0, 1, 2]
        assert index.path(0, 2, 4.0) is None

    def test_trivial_and_unreachable(self):
        g = WeightedGraph(3, [(0, 1, 1.0, 1.0)])
        index = WeightedWCIndex(g, track_parents=True)
        assert index.path(1, 1, 9.0) == [1]
        assert index.path(0, 2, 1.0) is None

    @pytest.mark.parametrize("trial", range(10))
    def test_paths_valid_and_optimal(self, trial):
        g = random_weighted_graph(trial)
        index = WeightedWCIndex(g, track_parents=True)
        qualities = g.distinct_qualities() or [1.0]
        for w in qualities + [0.5]:
            for s in g.vertices():
                for t in g.vertices():
                    expected = constrained_dijkstra(g, s, t, w)
                    path = index.path(s, t, w)
                    if expected == INF:
                        assert path is None, (trial, s, t, w)
                        continue
                    assert path is not None
                    assert path[0] == s and path[-1] == t
                    # Every hop a real edge meeting the constraint, and
                    # the summed length optimal.
                    total = 0.0
                    for a, b in zip(path, path[1:]):
                        length, quality = g.edge(a, b)
                        assert quality >= w, (trial, s, t, w)
                        total += length
                    assert total == pytest.approx(expected), (trial, s, t, w)


class TestUnitLengthsMatchUnweighted:
    def test_degenerates_to_bfs_index(self):
        from repro.core import build_wc_index_plus
        from repro.graph.generators import gnm_random_graph

        und = gnm_random_graph(12, 25, num_qualities=3, seed=31)
        wg = WeightedGraph(12)
        for u, v, q in und.edges():
            wg.add_edge(u, v, 1.0, q)
        weighted = WeightedWCIndex(wg)
        unweighted = build_wc_index_plus(und, "degree")
        for w in (0.5, 1.0, 2.0, 3.0, 4.0):
            for s in range(12):
                for t in range(12):
                    assert weighted.distance(s, t, w) == unweighted.distance(
                        s, t, w
                    )
