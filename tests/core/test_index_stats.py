"""Tests for WC-INDEX introspection statistics."""

import pytest

from repro.core import build_wc_index_plus
from repro.core.index_stats import collect_statistics
from repro.graph.generators import paper_figure3, path_graph, scale_free_network
from repro.graph.graph import Graph


class TestCollect:
    def test_paper_example_counts(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        stats = collect_statistics(index)
        assert stats.num_vertices == 6
        assert stats.entry_count == 32  # Table II
        assert stats.avg_label_size == pytest.approx(32 / 6)
        assert stats.max_label_size == 11  # L(v5)
        assert sum(stats.label_size_histogram.values()) == 6

    def test_distance_histogram(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        stats = collect_statistics(index)
        assert stats.distance_histogram[0.0] == 6  # the self entries
        assert sum(stats.distance_histogram.values()) == 32

    def test_entries_per_hub_sums(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        stats = collect_statistics(index)
        assert sum(stats.entries_per_hub.values()) == 32
        # Rank-0 hub (v0) carries the most entries in Table II.
        assert stats.top_hubs(1)[0][0] == 0

    def test_median_odd_even(self):
        index = build_wc_index_plus(path_graph(3))
        stats = collect_statistics(index)
        assert stats.median_label_size > 0

    def test_empty_index(self):
        stats = collect_statistics(build_wc_index_plus(Graph(0)))
        assert stats.entry_count == 0
        assert stats.avg_label_size == 0.0
        assert stats.hub_concentration() == 0.0


class TestConcentration:
    def test_star_concentrates_on_center(self):
        from repro.graph.generators import star_graph

        index = build_wc_index_plus(star_graph(30), "degree")
        stats = collect_statistics(index)
        # The hub carries one entry per leaf: more than half the index.
        assert stats.hub_concentration(fraction=0.05) > 0.4

    def test_scale_free_top_hubs_dominate(self):
        g = scale_free_network(150, 3, seed=8)
        index = build_wc_index_plus(g, "degree")
        stats = collect_statistics(index)
        assert stats.hub_concentration(fraction=0.05) > 0.25

    def test_top_hubs_sorted(self):
        g = scale_free_network(80, 3, seed=9)
        stats = collect_statistics(build_wc_index_plus(g, "degree"))
        top = stats.top_hubs(5)
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)
