"""Tests for the frozen flat-array query engine."""

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.online import ConstrainedBFS
from repro.core import WCIndexBuilder, build_wc_index_plus
from repro.core.frozen import BYTES_PER_GROUP, FrozenWCIndex
from repro.core.labels import BYTES_PER_ENTRY
from repro.graph.generators import paper_figure3
from repro.workloads.queries import random_queries

INF = float("inf")


class TestFrozenMatchesOracle:
    def test_distance_matches_list_engine_and_bfs(self):
        # The heavy cross-validation: frozen == list == online BFS for
        # every pair, kernel and interesting threshold on random graphs.
        for trial in range(8):
            g = random_graph(trial)
            index = build_wc_index_plus(g, "degree")
            frozen = index.freeze()
            oracle = ConstrainedBFS(g)
            for w in thresholds_for(g):
                for s in g.vertices():
                    truth = oracle.single_source(s, w)
                    for t in g.vertices():
                        assert frozen.distance(s, t, w) == truth[t]
                        assert frozen.distance(s, t, w) == index.distance(
                            s, t, w
                        )

    def test_all_flat_kernels_agree(self):
        for trial in range(6):
            g = random_graph(trial)
            frozen = build_wc_index_plus(g, "degree").freeze()
            for w in thresholds_for(g):
                for s in g.vertices():
                    for t in g.vertices():
                        expected = frozen.distance(s, t, w)
                        for kernel in ("naive", "binary", "linear"):
                            assert (
                                frozen.distance_with(s, t, w, kernel)
                                == expected
                            )

    def test_unknown_kernel_rejected(self):
        frozen = build_wc_index_plus(paper_figure3()).freeze()
        with pytest.raises(ValueError, match="unknown kernel"):
            frozen.distance_with(0, 1, 1.0, "quantum")

    def test_reachable(self):
        frozen = build_wc_index_plus(paper_figure3(), "identity").freeze()
        assert frozen.reachable(2, 5, 2.0)
        assert not frozen.reachable(0, 5, 99.0)

    def test_vertex_range_checked(self):
        frozen = build_wc_index_plus(paper_figure3()).freeze()
        with pytest.raises(ValueError):
            frozen.distance(0, 99, 1.0)
        with pytest.raises(ValueError):
            frozen.entries_of(-1)


class TestBatchQueries:
    def test_distance_many_matches_single(self):
        for trial in range(5):
            g = random_graph(trial)
            index = build_wc_index_plus(g, "degree")
            frozen = index.freeze()
            workload = random_queries(g, 50, seed=trial)
            batch = frozen.distance_many(workload)
            assert batch == index.distance_many(workload)
            assert batch == [
                frozen.distance(s, t, w) for s, t, w in workload
            ]

    def test_distance_many_range_checked(self):
        frozen = build_wc_index_plus(paper_figure3()).freeze()
        with pytest.raises(ValueError):
            frozen.distance_many([(0, 99, 1.0)])


class TestFreezeThawRoundTrip:
    def test_thaw_reproduces_entries(self):
        for trial in range(6):
            g = random_graph(trial)
            index = build_wc_index_plus(g, "degree")
            thawed = index.freeze().thaw()
            assert thawed.order == index.order
            assert thawed.rank == index.rank
            for v in g.vertices():
                assert thawed.entries_of(v) == index.entries_of(v)

    def test_freeze_thaw_freeze_identical_arrays(self):
        g = random_graph(3)
        frozen = build_wc_index_plus(g, "degree").freeze()
        refrozen = frozen.thaw().freeze()
        a = frozen.raw_arrays()
        b = refrozen.raw_arrays()
        assert a[:4] == b[:4]
        assert a[4] is None and b[4] is None

    def test_round_trip_with_parents(self):
        g = paper_figure3()
        index = WCIndexBuilder(g, "identity", track_parents=True).build()
        frozen = index.freeze()
        assert frozen.tracks_parents
        thawed = frozen.thaw()
        assert thawed.tracks_parents
        for v in g.vertices():
            assert thawed.parent_list(v) == index.parent_list(v)
            assert list(frozen.parent_list(v)) == index.parent_list(v)

    def test_frozen_is_independent_snapshot(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        frozen = index.freeze()
        before = frozen.entry_count()
        index.append_entry(0, 5, 9.0, 1.0)
        assert frozen.entry_count() == before

    def test_thawed_index_is_mutable(self):
        frozen = build_wc_index_plus(paper_figure3(), "identity").freeze()
        thawed = frozen.thaw()
        assert thawed.insert_entry_sorted(0, 5, 9.0, 99.0)


class TestStructure:
    def test_group_directory_covers_all_entries(self):
        g = random_graph(4)
        index = build_wc_index_plus(g, "degree")
        frozen = index.freeze()
        for v in g.vertices():
            groups = frozen.group_directory(v)
            hubs, _, _ = index.label_lists(v)
            # Concatenated group slices reproduce the label list exactly.
            covered = []
            for hub, start, end in groups:
                assert start < end
                for i in range(start, end):
                    covered.append(hub)
            assert covered == hubs
            # Groups are sorted by hub rank and boundaries touch.
            assert [h for h, _, _ in groups] == sorted(
                {h for h, _, _ in groups}
            )

    def test_directory_views_are_lazy(self):
        # Loading/freezing must stay at raw array speed: the group
        # directory appears on the first query, the hub map on the
        # first stdlib batch (other kernel backends build their own
        # per-side state instead and never touch it).
        frozen = build_wc_index_plus(paper_figure3(), "identity").freeze(
            backend="stdlib"
        )
        side = frozen._side
        assert side._directory is None and side._hub_map is None
        frozen.distance(0, 4, 1.0)
        assert side._directory is not None
        assert side._hub_map is None
        frozen.distance_many([(0, 4, 1.0)])
        assert side._hub_map is not None

    def test_label_lists_are_views(self):
        frozen = build_wc_index_plus(paper_figure3(), "identity").freeze()
        hubs, dists, quals = frozen.label_lists(2)
        assert isinstance(hubs, memoryview)
        assert len(hubs) == len(dists) == len(quals)
        assert len(hubs) == frozen.label_size(2)

    def test_entry_accounting_matches_list_engine(self):
        g = random_graph(5)
        index = build_wc_index_plus(g, "degree")
        frozen = index.freeze()
        assert frozen.entry_count() == index.entry_count()
        assert frozen.max_label_size() == index.max_label_size()
        assert frozen.num_vertices == index.num_vertices
        for v in g.vertices():
            assert frozen.label_size(v) == index.label_size(v)
            assert frozen.entries_of(v) == index.entries_of(v)
        assert list(frozen.iter_entries()) == list(index.iter_entries())

    def test_witness_parity_with_list_engine(self):
        g = random_graph(6)
        index = build_wc_index_plus(g, "degree")
        frozen = index.freeze()
        for w in thresholds_for(g):
            for s in g.vertices():
                for t in g.vertices():
                    expected = index.distance_with_witness(s, t, w)
                    assert frozen.distance_with_witness(s, t, w) == expected

    def test_empty_index(self):
        from repro.graph.graph import Graph

        frozen = build_wc_index_plus(Graph(0)).freeze()
        assert frozen.num_vertices == 0
        assert frozen.entry_count() == 0
        assert frozen.max_label_size() == 0


class TestFootprint:
    def test_nbytes_reconciles_with_bytes_per_entry(self):
        # WCIndex.size_bytes models exactly the per-entry cost of the
        # frozen arrays; the frozen nbytes adds offsets + directory.
        g = random_graph(7)
        index = build_wc_index_plus(g, "degree")
        frozen = index.freeze()
        offsets, hubs, dists, quals, parents = frozen.raw_arrays()
        entry_bytes = (
            hubs.itemsize * len(hubs)
            + dists.itemsize * len(dists)
            + quals.itemsize * len(quals)
        )
        assert entry_bytes == BYTES_PER_ENTRY * frozen.entry_count()
        assert entry_bytes == index.size_bytes()
        expected = (
            entry_bytes
            + offsets.itemsize * len(offsets)
            + BYTES_PER_GROUP * frozen.group_count()
            + 8 * (frozen.num_vertices + 1)
        )
        assert frozen.nbytes() == expected
        assert parents is None

    def test_typecodes_are_platform_independent(self):
        frozen = build_wc_index_plus(paper_figure3()).freeze()
        offsets, hubs, dists, quals, _ = frozen.raw_arrays()
        assert offsets.itemsize == 8
        assert hubs.itemsize == 4
        assert dists.itemsize == 8
        assert quals.itemsize == 8

    def test_repr_mentions_engine(self):
        frozen = build_wc_index_plus(paper_figure3()).freeze()
        assert "FrozenWCIndex" in repr(frozen)


class TestBuilderIntegration:
    def test_build_wc_index_plus_freeze_flag(self):
        from repro.core import build_wc_index

        g = paper_figure3()
        frozen = build_wc_index_plus(g, "identity", freeze=True)
        assert isinstance(frozen, FrozenWCIndex)
        basic = build_wc_index(g, "identity", freeze=True)
        assert isinstance(basic, FrozenWCIndex)
        unfrozen = build_wc_index_plus(g, "identity")
        for v in g.vertices():
            assert frozen.entries_of(v) == unfrozen.entries_of(v)
            assert basic.entries_of(v) == unfrozen.entries_of(v)

    def test_constructor_validates_shapes(self):
        from array import array

        with pytest.raises(ValueError, match="offsets"):
            FrozenWCIndex(
                [0, 1],
                array("q", [0, 1]),
                array("i", [0]),
                array("d", [0.0]),
                array("d", [1.0]),
            )
        with pytest.raises(ValueError, match="disagree"):
            FrozenWCIndex(
                [0],
                array("q", [0, 2]),
                array("i", [0]),
                array("d", [0.0]),
                array("d", [1.0]),
            )
