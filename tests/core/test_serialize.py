"""Tests for WC-INDEX serialization."""

import io

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.core import DirectedWCIndex, WCIndexBuilder, WeightedWCIndex, build_wc_index_plus
from repro.core.frozen import (
    FrozenDirectedWCIndex,
    FrozenWCIndex,
    FrozenWeightedWCIndex,
)
from repro.core.serialize import (
    IndexFormatError,
    describe_frozen,
    is_binary_index_path,
    load_frozen,
    load_index,
    save_frozen,
    save_index,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import paper_figure3
from repro.graph.weighted import WeightedGraph


def section_offset(data: bytes, name: str) -> int:
    """Byte offset of a named section, straight from the image's table."""
    record = next(
        s for s in describe_frozen(io.BytesIO(bytes(data)))["sections"]
        if s["name"] == name
    )
    return record["offset"]


def round_trip(index):
    buffer = io.StringIO()
    save_index(index, buffer)
    buffer.seek(0)
    return load_index(buffer)


class TestRoundTrip:
    def test_entries_preserved(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        loaded = round_trip(index)
        assert loaded.order == index.order
        for v in range(index.num_vertices):
            assert loaded.entries_of(v) == index.entries_of(v)

    def test_answers_preserved(self):
        for trial in range(6):
            g = random_graph(trial)
            index = build_wc_index_plus(g, "degree")
            loaded = round_trip(index)
            for w in thresholds_for(g):
                for s in g.vertices():
                    for t in g.vertices():
                        assert loaded.distance(s, t, w) == index.distance(
                            s, t, w
                        )

    def test_parents_preserved(self):
        g = paper_figure3()
        index = WCIndexBuilder(g, "identity", track_parents=True).build()
        loaded = round_trip(index)
        assert loaded.tracks_parents
        for v in range(g.num_vertices):
            assert loaded.parent_list(v) == index.parent_list(v)

    def test_infinity_quality_survives(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        loaded = round_trip(index)
        _, _, quals = loaded.label_lists(0)
        assert quals[0] == float("inf")

    def test_file_round_trip(self, tmp_path):
        index = build_wc_index_plus(paper_figure3())
        path = tmp_path / "example.wci"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.entry_count() == index.entry_count()

    def test_gzip_round_trip(self, tmp_path):
        index = build_wc_index_plus(paper_figure3())
        path = tmp_path / "example.wci.gz"
        save_index(index, path)
        assert load_index(path).entry_count() == index.entry_count()
        # Must actually be gzip: starts with the magic bytes.
        assert path.read_bytes()[:2] == b"\x1f\x8b"


class TestFormatErrors:
    def test_empty_file(self):
        with pytest.raises(IndexFormatError, match="empty"):
            load_index(io.StringIO(""))

    def test_bad_magic(self):
        with pytest.raises(IndexFormatError, match="header"):
            load_index(io.StringIO("NOTANINDEX 1 2 0\n"))

    def test_bad_version(self):
        with pytest.raises(IndexFormatError, match="version"):
            load_index(io.StringIO("WCINDEX 99 1 0\nO 0\nV 0 0\n"))

    def test_truncated_entries(self):
        text = "WCINDEX 1 1 0\nO 0\nV 0 2\nE 0 0.0 inf\n"
        with pytest.raises(IndexFormatError, match="end of file"):
            load_index(io.StringIO(text))

    def test_order_not_permutation(self):
        with pytest.raises(IndexFormatError, match="permutation"):
            load_index(io.StringIO("WCINDEX 1 2 0\nO 0 0\nV 0 0\nV 1 0\n"))

    def test_hub_out_of_range(self):
        text = "WCINDEX 1 1 0\nO 0\nV 0 1\nE 7 0.0 inf\n"
        with pytest.raises(IndexFormatError, match="hub rank"):
            load_index(io.StringIO(text))

    def test_vertex_out_of_range(self):
        text = "WCINDEX 1 1 0\nO 0\nV 5 0\n"
        with pytest.raises(IndexFormatError, match="out of range"):
            load_index(io.StringIO(text))

    def test_malformed_entry(self):
        text = "WCINDEX 1 1 0\nO 0\nV 0 1\nE zero one two\n"
        with pytest.raises(IndexFormatError):
            load_index(io.StringIO(text))

    def test_comments_and_blanks_tolerated(self):
        index = build_wc_index_plus(paper_figure3())
        buffer = io.StringIO()
        save_index(index, buffer)
        noisy = "# saved index\n\n" + buffer.getvalue()
        assert load_index(io.StringIO(noisy)).entry_count() == index.entry_count()

    def test_trailing_garbage_rejected(self):
        # Regression: the reader used to stop after the last vertex block
        # and silently ignore whatever followed.
        index = build_wc_index_plus(paper_figure3())
        buffer = io.StringIO()
        save_index(index, buffer)
        for garbage in ("E 0 1.0 1.0\n", "V 0 0\n", "stray tokens\n"):
            with pytest.raises(IndexFormatError, match="trailing"):
                load_index(io.StringIO(buffer.getvalue() + garbage))

    def test_trailing_comments_and_blanks_still_ok(self):
        index = build_wc_index_plus(paper_figure3())
        buffer = io.StringIO()
        save_index(index, buffer)
        padded = buffer.getvalue() + "\n# trailing comment\n\n"
        assert (
            load_index(io.StringIO(padded)).entry_count()
            == index.entry_count()
        )


class TestBinaryFormat:
    def binary_round_trip(self, index):
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        buffer.seek(0)
        return load_frozen(buffer)

    def test_round_trip_from_list_index(self):
        for trial in range(5):
            g = random_graph(trial)
            index = build_wc_index_plus(g, "degree")
            loaded = self.binary_round_trip(index)
            assert isinstance(loaded, FrozenWCIndex)
            assert loaded.order == index.order
            for v in g.vertices():
                assert loaded.entries_of(v) == index.entries_of(v)

    def test_round_trip_from_frozen(self):
        g = random_graph(2)
        frozen = build_wc_index_plus(g, "degree").freeze()
        loaded = self.binary_round_trip(frozen)
        assert loaded.raw_arrays()[:4] == frozen.raw_arrays()[:4]

    def test_answers_preserved(self):
        g = random_graph(4)
        index = build_wc_index_plus(g, "degree")
        loaded = self.binary_round_trip(index)
        for w in thresholds_for(g):
            for s in g.vertices():
                for t in g.vertices():
                    assert loaded.distance(s, t, w) == index.distance(s, t, w)

    def test_inf_quality_survives(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        loaded = self.binary_round_trip(index)
        _, _, quals = loaded.label_lists(0)
        assert quals[0] == float("inf")

    def test_parents_survive(self):
        g = paper_figure3()
        index = WCIndexBuilder(g, "identity", track_parents=True).build()
        loaded = self.binary_round_trip(index)
        assert loaded.tracks_parents
        for v in g.vertices():
            assert list(loaded.parent_list(v)) == index.parent_list(v)

    def test_wcxb_path_dispatch(self, tmp_path):
        index = build_wc_index_plus(paper_figure3(), "identity")
        path = tmp_path / "example.wcxb"
        save_index(index, path)
        frozen = load_frozen(path)
        assert isinstance(frozen, FrozenWCIndex)
        thawed = load_index(path)
        assert not isinstance(thawed, FrozenWCIndex)
        for v in range(index.num_vertices):
            assert frozen.entries_of(v) == index.entries_of(v)
            assert thawed.entries_of(v) == index.entries_of(v)

    def test_bad_magic(self):
        with pytest.raises(IndexFormatError, match="magic"):
            load_frozen(io.BytesIO(b"NOPE" + b"\x00" * 12))

    def test_truncated_header(self):
        with pytest.raises(IndexFormatError, match="truncated"):
            load_frozen(io.BytesIO(b"WCXB"))

    def test_truncated_body(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        clipped = buffer.getvalue()[:-8]
        with pytest.raises(IndexFormatError, match="truncated"):
            load_frozen(io.BytesIO(clipped))

    def test_trailing_bytes_rejected(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        with pytest.raises(IndexFormatError, match="trailing"):
            load_frozen(io.BytesIO(buffer.getvalue() + b"\x00"))

    def test_bad_version(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        data = bytearray(buffer.getvalue())
        data[4] = 99  # version halfword
        with pytest.raises(IndexFormatError, match="version"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_order_must_be_permutation(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        data = bytearray(buffer.getvalue())
        # Clobber the first vertex id of the order section with a
        # duplicate of the second.
        order_at = section_offset(data, "order")
        data[order_at:order_at + 8] = data[order_at + 8:order_at + 16]
        with pytest.raises(IndexFormatError, match="permutation"):
            load_frozen(io.BytesIO(bytes(data)))

    def corrupt_wcxb(self):
        """Valid paper_figure3 image (n=6, identity order) as a mutable
        buffer plus the byte positions of its label sections, located
        through the image's own section table."""
        import struct

        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        data = bytearray(buffer.getvalue())
        offsets_at = section_offset(data, "offsets")
        hubs_at = section_offset(data, "hubs")
        return data, offsets_at, hubs_at, struct

    def test_non_monotonic_offsets_rejected(self):
        # Regression: in-range but decreasing offsets used to load
        # "successfully" and silently answer INF for the clobbered vertex.
        data, offsets_at, _, struct = self.corrupt_wcxb()
        second = struct.unpack_from("<q", data, offsets_at + 16)[0]
        struct.pack_into("<q", data, offsets_at + 8, second + 1)
        with pytest.raises(IndexFormatError, match="monotonic"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_offset_table_must_start_at_zero(self):
        data, offsets_at, _, struct = self.corrupt_wcxb()
        struct.pack_into("<q", data, offsets_at, 1)
        with pytest.raises(IndexFormatError, match="start at 0"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_out_of_range_offset_rejected(self):
        # An interior offset past the entry total breaks monotonicity at
        # the next vertex — it used to escape as a bare IndexError from
        # the directory build.
        data, offsets_at, _, struct = self.corrupt_wcxb()
        struct.pack_into("<q", data, offsets_at + 8, 10_000)
        with pytest.raises(IndexFormatError, match="monotonic"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_out_of_range_hub_rejected(self):
        data, _, hubs_at, struct = self.corrupt_wcxb()
        struct.pack_into("<i", data, hubs_at, 99)
        with pytest.raises(IndexFormatError, match="hub rank"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_unsorted_hubs_rejected(self):
        # Regression: in-range but unsorted hub ranks used to load and
        # silently break the sorted merge (reachable pairs answered INF).
        data, offsets_at, hubs_at, struct = self.corrupt_wcxb()
        # Vertex 1's label in the identity-ordered figure-3 index starts
        # with hubs [0, 1, ...]; swapping the first two breaks ordering.
        start = struct.unpack_from("<q", data, offsets_at + 8)[0]
        at = hubs_at + 4 * start
        first = struct.unpack_from("<i", data, at)[0]
        second = struct.unpack_from("<i", data, at + 4)[0]
        assert first < second  # sanity: the slice really was sorted
        struct.pack_into("<i", data, at, second)
        struct.pack_into("<i", data, at + 4, first)
        with pytest.raises(IndexFormatError, match="not sorted"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_unsorted_group_distances_rejected(self):
        # Regression: swapping only the distances of a multi-entry group
        # (qualities untouched) used to load and make the linear/binary
        # kernels return a non-minimal distance.
        index = build_wc_index_plus(paper_figure3(), "identity")
        hubs, dists, _ = index.label_lists(4)
        target = next(
            i for i in range(1, len(hubs))
            if hubs[i] == hubs[i - 1]
        )
        dists[target], dists[target - 1] = dists[target - 1], dists[target]
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        with pytest.raises(IndexFormatError, match="staircase"):
            load_frozen(io.BytesIO(buffer.getvalue()))

    def test_unsorted_group_qualities_rejected(self):
        # Vertex 4 of the figure-3 index has a multi-entry hub group
        # (Pareto staircase); reversing its qualities must be rejected.
        index = build_wc_index_plus(paper_figure3(), "identity")
        hubs, _, quals = index.label_lists(4)
        target = next(
            i for i in range(1, len(hubs))
            if hubs[i] == hubs[i - 1]
        )
        quals[target], quals[target - 1] = quals[target - 1], quals[target]
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        with pytest.raises(IndexFormatError, match="staircase"):
            load_frozen(io.BytesIO(buffer.getvalue()))

    def test_dominated_duplicate_entries_tolerated(self):
        # Parity with the text loader: a hand-written index may carry
        # dominated entries (equal-quality, longer-distance); they are
        # harmless for the kernels and must survive the integrity scan.
        index = build_wc_index_plus(paper_figure3(), "identity")
        hubs, dists, quals = index.label_lists(0)
        hubs.append(hubs[-1])
        dists.append(dists[-1] + 1.0)
        quals.append(quals[-1])
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        loaded = load_frozen(io.BytesIO(buffer.getvalue()))
        assert loaded.entry_count() == index.entry_count()

    def test_validate_false_skips_integrity_scan(self):
        # Trusted reloads may disable the O(entries) scan: the same
        # corrupt image that validation rejects loads raw.
        data, offsets_at, hubs_at, struct = self.corrupt_wcxb()
        struct.pack_into("<i", data, hubs_at, 99)
        with pytest.raises(IndexFormatError):
            load_frozen(io.BytesIO(bytes(data)))
        loaded = load_frozen(io.BytesIO(bytes(data)), validate=False)
        assert loaded.entry_count() == 32

    def test_out_of_range_parent_rejected(self):
        g = paper_figure3()
        index = WCIndexBuilder(g, "identity", track_parents=True).build()
        index.parent_list(2)[0] = 77
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        with pytest.raises(IndexFormatError, match="parent"):
            load_frozen(io.BytesIO(buffer.getvalue()))


def sample_digraph() -> DiGraph:
    return DiGraph(
        4, [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0), (3, 0, 4.0), (0, 2, 2.0)]
    )


def sample_weighted_graph() -> WeightedGraph:
    return WeightedGraph(
        4,
        [
            (0, 1, 2.0, 3.0),
            (1, 2, 1.5, 1.0),
            (2, 3, 0.5, 2.0),
            (0, 3, 10.0, 4.0),
        ],
    )


class TestBinaryVariants:
    """The v2 format: one header, three index families."""

    def binary_round_trip(self, index):
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        buffer.seek(0)
        return load_frozen(buffer)

    @pytest.mark.parametrize("track_parents", [False, True])
    def test_directed_round_trip(self, track_parents):
        index = DirectedWCIndex(sample_digraph(), track_parents=track_parents)
        loaded = self.binary_round_trip(index)
        assert isinstance(loaded, FrozenDirectedWCIndex)
        assert loaded.tracks_parents == track_parents
        assert loaded.raw_sides() == index.freeze().raw_sides()

    @pytest.mark.parametrize("track_parents", [False, True])
    def test_weighted_round_trip(self, track_parents):
        index = WeightedWCIndex(
            sample_weighted_graph(), track_parents=track_parents
        )
        loaded = self.binary_round_trip(index)
        assert isinstance(loaded, FrozenWeightedWCIndex)
        assert loaded.tracks_parents == track_parents
        assert loaded.raw_arrays() == index.freeze().raw_arrays()

    def test_answers_preserved_across_families(self):
        queries = [
            (s, t, w) for s in range(4) for t in range(4)
            for w in (0.5, 1.0, 2.0, 3.0, 9.0)
        ]
        for index in (
            DirectedWCIndex(sample_digraph()),
            WeightedWCIndex(sample_weighted_graph()),
        ):
            loaded = self.binary_round_trip(index)
            assert loaded.distance_many(queries) == index.distance_many(queries)

    def test_load_index_thaws_to_list_engines(self, tmp_path):
        directed = DirectedWCIndex(sample_digraph())
        path = tmp_path / "d.wcxb"
        save_index(directed, path)
        assert isinstance(load_index(path), DirectedWCIndex)
        weighted = WeightedWCIndex(sample_weighted_graph())
        path = tmp_path / "w.wcxb"
        save_index(weighted, path)
        assert isinstance(load_index(path), WeightedWCIndex)

    def test_text_format_rejects_extensions(self, tmp_path):
        with pytest.raises(ValueError, match="undirected"):
            save_index(DirectedWCIndex(sample_digraph()), io.StringIO())
        with pytest.raises(ValueError, match="undirected"):
            save_index(
                WeightedWCIndex(sample_weighted_graph()),
                tmp_path / "w.wci",
            )
        # Regression: the path branch used to open (truncate) the
        # destination before rejecting, leaving an empty file behind —
        # or destroying an existing index.
        assert not (tmp_path / "w.wci").exists()
        existing = tmp_path / "existing.wci"
        save_index(build_wc_index_plus(paper_figure3()), existing)
        before = existing.read_bytes()
        with pytest.raises(ValueError, match="undirected"):
            save_index(DirectedWCIndex(sample_digraph()), existing)
        assert existing.read_bytes() == before

    def test_uppercase_suffix_selects_binary_format(self, tmp_path):
        # Regression: the suffix dispatch was case-sensitive, so
        # INDEX.WCXB fell through to the text loader and died with a
        # confusing parse error.
        assert is_binary_index_path("INDEX.WCXB")
        assert is_binary_index_path("index.WcXb")
        assert not is_binary_index_path("index.wci")
        index = build_wc_index_plus(paper_figure3(), "identity")
        path = tmp_path / "INDEX.WCXB"
        save_index(index, path)
        assert path.read_bytes()[:4] == b"WCXB"
        loaded = load_index(path)
        for v in range(index.num_vertices):
            assert loaded.entries_of(v) == index.entries_of(v)
        assert isinstance(load_frozen(path), FrozenWCIndex)

    def corrupt_header(self, index):
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        return bytearray(buffer.getvalue())

    def test_unknown_variant_rejected(self):
        import struct

        data = self.corrupt_header(build_wc_index_plus(paper_figure3()))
        struct.pack_into("<H", data, 6, 99)  # variant halfword
        with pytest.raises(IndexFormatError, match="variant"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_section_count_mismatch_rejected(self):
        import struct

        data = self.corrupt_header(build_wc_index_plus(paper_figure3()))
        struct.pack_into("<H", data, 10, 7)  # section-count halfword
        with pytest.raises(IndexFormatError, match="sections"):
            load_frozen(io.BytesIO(bytes(data)))

    def test_section_offset_mismatch_rejected(self):
        import struct

        data = self.corrupt_header(build_wc_index_plus(paper_figure3()))
        # Shift the second section's table offset (the offsets array):
        # v3 table entries are (offset, nbytes) int64 pairs at byte 24.
        at = 24 + 16
        value = struct.unpack_from("<q", data, at)[0]
        struct.pack_into("<q", data, at, value + 8)
        with pytest.raises(
            IndexFormatError, match="'offsets'.*disagrees"
        ):
            load_frozen(io.BytesIO(bytes(data)))

    def test_size_stamp_mismatch_rejected(self):
        import struct

        data = self.corrupt_header(build_wc_index_plus(paper_figure3()))
        # Bit-flip the second section's size stamp.
        at = 24 + 16 + 8
        value = struct.unpack_from("<q", data, at)[0]
        struct.pack_into("<q", data, at, value ^ 8)
        with pytest.raises(
            IndexFormatError, match="'offsets' size stamp"
        ):
            load_frozen(io.BytesIO(bytes(data)))

    def test_directed_sides_validated(self):
        # Corrupt a hub rank in the out-side of a directed image: the
        # integrity scan must reject it, validate=False must load it raw.
        import struct

        index = DirectedWCIndex(sample_digraph())
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        data = bytearray(buffer.getvalue())
        out_hubs_at = section_offset(data, "out_hubs")
        struct.pack_into("<i", data, out_hubs_at, 99)
        with pytest.raises(IndexFormatError, match="hub rank"):
            load_frozen(io.BytesIO(bytes(data)))
        loaded = load_frozen(io.BytesIO(bytes(data)), validate=False)
        assert loaded.entry_count() == index.entry_count()

    def test_weighted_parent_entry_validated(self):
        index = WeightedWCIndex(sample_weighted_graph(), track_parents=True)
        frozen = index.freeze()
        _, _, _, _, pv, pe = frozen.raw_arrays()
        target = next(i for i in range(len(pv)) if pv[i] >= 0)
        pe[target] = 1_000
        buffer = io.BytesIO()
        save_frozen(frozen, buffer)
        with pytest.raises(IndexFormatError, match="parent entry"):
            load_frozen(io.BytesIO(buffer.getvalue()))

    def test_v1_images_still_load(self):
        # Back-compat: a PR 1 undirected image (version 1, no variant
        # tag or section table) loads into the same frozen engine.
        import struct
        from array import array

        index = build_wc_index_plus(paper_figure3(), "identity")
        frozen = index.freeze()
        offsets, hubs, dists, quals, _ = frozen.raw_arrays()
        v1 = struct.pack("<4sHHq", b"WCXB", 1, 0, frozen.num_vertices)
        v1 += array("q", frozen.order).tobytes()
        v1 += offsets.tobytes() + hubs.tobytes()
        v1 += dists.tobytes() + quals.tobytes()
        loaded = load_frozen(io.BytesIO(v1))
        assert loaded.raw_arrays()[:4] == frozen.raw_arrays()[:4]
        # describe_frozen reconstructs the v1 layout from the body: its
        # hand-computed offsets must agree with where the loader reads.
        described = describe_frozen(io.BytesIO(v1))
        assert described["format_version"] == 1
        assert described["total_bytes"] == len(v1)
        n = frozen.num_vertices
        by_name = {s["name"]: s for s in described["sections"]}
        assert by_name["order"]["offset"] == 16
        assert by_name["offsets"]["offset"] == 16 + 8 * n
        assert by_name["hubs"]["offset"] == 16 + 8 * n + 8 * (n + 1)
        assert by_name["hubs"]["nbytes"] == 4 * frozen.entry_count()

    def test_validate_false_skips_order_permutation_check(self):
        # Trusted attaches must stay near-constant in index size, so the
        # O(n log n) permutation scan rides the validate flag; a
        # duplicated (in-range) order id loads raw without it.
        import struct

        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        data = bytearray(buffer.getvalue())
        order_at = section_offset(data, "order")
        data[order_at:order_at + 8] = data[order_at + 8:order_at + 16]
        with pytest.raises(IndexFormatError, match="permutation"):
            load_frozen(io.BytesIO(bytes(data)))
        loaded = load_frozen(io.BytesIO(bytes(data)), validate=False)
        assert loaded.entry_count() == index.entry_count()
        # An out-of-range order id must still fail cleanly, not crash.
        struct.pack_into("<q", data, order_at, 10_000)
        with pytest.raises(IndexFormatError, match="inconsistent"):
            load_frozen(io.BytesIO(bytes(data)), validate=False)

    def test_v2_images_still_load(self):
        # Back-compat: a PR 3 image (version 2, variant tag + unstamped
        # offset table, back-to-back sections) loads into the same
        # engine as the v3 writer produces.
        import struct
        from array import array

        index = build_wc_index_plus(paper_figure3(), "identity")
        frozen = index.freeze()
        sections = [array("q", frozen.order)] + [
            part for part in frozen.raw_arrays() if part is not None
        ]
        header = struct.pack(
            "<4sHHHHq", b"WCXB", 2, 0, 0, len(sections), frozen.num_vertices
        )
        cursor = len(header) + 8 * len(sections)
        table = array("q")
        for section in sections:
            table.append(cursor)
            cursor += section.itemsize * len(section)
        v2 = header + table.tobytes() + b"".join(
            section.tobytes() for section in sections
        )
        loaded = load_frozen(io.BytesIO(v2))
        assert loaded.order == frozen.order
        assert loaded.raw_arrays()[:4] == frozen.raw_arrays()[:4]
        described = describe_frozen(io.BytesIO(v2))
        assert described["format_version"] == 2
        assert [s["name"] for s in described["sections"]] == [
            "order", "offsets", "hubs", "dists", "quals",
        ]


class TestV3Layout:
    """The attachable v3 image: alignment, size stamps, describe."""

    def image_of(self, index) -> bytes:
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        return buffer.getvalue()

    def test_sections_are_aligned_and_size_stamped(self):
        g = random_graph(3)
        data = self.image_of(build_wc_index_plus(g, "degree"))
        described = describe_frozen(io.BytesIO(data))
        assert described["format_version"] == 3
        assert described["variant"] == "undirected"
        assert described["total_bytes"] == len(data)
        previous_end = 0
        for section in described["sections"]:
            assert section["offset"] % 8 == 0
            assert section["offset"] >= previous_end
            previous_end = section["offset"] + section["nbytes"]
        assert previous_end == len(data)

    def test_describe_names_all_variants(self):
        directed = self.image_of(DirectedWCIndex(sample_digraph()))
        names = [
            s["name"]
            for s in describe_frozen(io.BytesIO(directed))["sections"]
        ]
        assert names[:2] == ["order", "in_offsets"]
        assert "out_hubs" in names
        weighted = self.image_of(
            WeightedWCIndex(sample_weighted_graph(), track_parents=True)
        )
        described = describe_frozen(io.BytesIO(weighted))
        assert described["variant"] == "weighted"
        assert described["tracks_parents"]
        assert [s["name"] for s in described["sections"]][-2:] == [
            "parent_vertices", "parent_entries",
        ]

    def test_truncated_file_names_the_section(self):
        data = self.image_of(build_wc_index_plus(paper_figure3(), "identity"))
        with pytest.raises(IndexFormatError, match="section 'quals'"):
            load_frozen(io.BytesIO(data[:-8]))
        # Clipped all the way into the hubs section.
        hubs_at = section_offset(data, "hubs")
        with pytest.raises(IndexFormatError, match="section 'hubs'"):
            load_frozen(io.BytesIO(data[:hubs_at + 4]))

    def test_bit_flipped_table_is_a_clean_error(self):
        data = bytearray(
            self.image_of(build_wc_index_plus(paper_figure3(), "identity"))
        )
        for at in range(24, 24 + 16 * 5, 8):
            corrupt = bytearray(data)
            corrupt[at] ^= 0x10
            with pytest.raises(IndexFormatError):
                load_frozen(io.BytesIO(bytes(corrupt)))

    def test_empty_order_image_round_trips(self):
        from repro.graph.graph import Graph

        data = self.image_of(build_wc_index_plus(Graph(0)))
        loaded = load_frozen(io.BytesIO(data))
        assert loaded.num_vertices == 0


class TestMmapAttach:
    """``load_frozen(path, mode="mmap")``: zero-copy file attach."""

    @pytest.fixture
    def saved(self, tmp_path):
        index = build_wc_index_plus(paper_figure3(), "identity")
        path = tmp_path / "figure3.wcxb"
        save_frozen(index, path)
        return index, path

    def test_mmap_answers_match_read_mode(self, saved):
        import mmap as mmap_module

        index, path = saved
        attached = load_frozen(path, mode="mmap")
        try:
            assert attached.order == index.order
            for v in range(index.num_vertices):
                assert attached.entries_of(v) == index.entries_of(v)
            # Genuinely zero-copy: the flat stores are views into the map.
            offsets, hubs, dists, quals, _ = attached.raw_arrays()
            for view in (offsets, hubs, dists, quals):
                assert isinstance(view, memoryview)
                assert isinstance(view.obj, mmap_module.mmap)
            queries = [
                (s, t, w)
                for s in range(6) for t in range(6) for w in (1.0, 2.0, 3.0)
            ]
            assert attached.distance_many(queries) == index.distance_many(
                queries
            )
        finally:
            attached.release()

    def test_mmap_validate_rejects_corruption(self, saved, tmp_path):
        import struct

        _, path = saved
        data = bytearray(path.read_bytes())
        struct.pack_into("<i", data, section_offset(data, "hubs"), 99)
        bad = tmp_path / "bad.wcxb"
        bad.write_bytes(bytes(data))
        with pytest.raises(IndexFormatError, match="hub rank"):
            load_frozen(bad, mode="mmap")
        # The error path must release its views so the map can close —
        # loading the good file afterwards still works.
        engine = load_frozen(bad, mode="mmap", validate=False)
        assert engine.entry_count() == 32
        engine.release()

    def test_mmap_requires_v3(self, tmp_path):
        import struct
        from array import array

        frozen = build_wc_index_plus(paper_figure3(), "identity").freeze()
        offsets, hubs, dists, quals, _ = frozen.raw_arrays()
        v1 = struct.pack("<4sHHq", b"WCXB", 1, 0, frozen.num_vertices)
        v1 += array("q", frozen.order).tobytes()
        v1 += offsets.tobytes() + hubs.tobytes()
        v1 += dists.tobytes() + quals.tobytes()
        path = tmp_path / "legacy.wcxb"
        path.write_bytes(v1)
        with pytest.raises(IndexFormatError, match="version 1"):
            load_frozen(path, mode="mmap")
        # The copying path still reads it.
        assert load_frozen(path).entry_count() == frozen.entry_count()

    def test_mmap_requires_a_path(self, saved):
        _, path = saved
        with open(path, "rb") as handle:
            with pytest.raises(ValueError, match="file path"):
                load_frozen(handle, mode="mmap")

    def test_unknown_mode_rejected(self, saved):
        _, path = saved
        with pytest.raises(ValueError, match="unknown load mode"):
            load_frozen(path, mode="copy")

    def test_empty_file_is_clean_error(self, tmp_path):
        path = tmp_path / "empty.wcxb"
        path.write_bytes(b"")
        with pytest.raises(IndexFormatError, match="truncated"):
            load_frozen(path, mode="mmap")

    def test_directed_and_weighted_attach(self, tmp_path):
        for name, index in (
            ("d", DirectedWCIndex(sample_digraph())),
            ("w", WeightedWCIndex(sample_weighted_graph())),
        ):
            path = tmp_path / f"{name}.wcxb"
            save_frozen(index, path)
            attached = load_frozen(path, mode="mmap")
            queries = [
                (s, t, w)
                for s in range(4) for t in range(4) for w in (1.0, 2.0, 3.0)
            ]
            assert attached.distance_many(queries) == index.distance_many(
                queries
            )
            attached.release()


class TestAttachFrozenBuffer:
    """``attach_frozen``: zero-copy attach to any byte buffer."""

    def test_attach_to_bytes(self):
        from repro.core.serialize import attach_frozen

        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        engine = attach_frozen(buffer.getvalue())
        for v in range(index.num_vertices):
            assert engine.entries_of(v) == index.entries_of(v)
        engine.release()

    def test_exact_false_tolerates_page_padding(self):
        from repro.core.serialize import attach_frozen

        index = build_wc_index_plus(paper_figure3(), "identity")
        buffer = io.BytesIO()
        save_frozen(index, buffer)
        padded = buffer.getvalue() + b"\x00" * 4096  # shm page rounding
        with pytest.raises(IndexFormatError, match="trailing"):
            attach_frozen(padded)
        engine = attach_frozen(padded, exact=False)
        assert engine.entry_count() == index.entry_count()
        engine.release()

    def test_attach_rejects_v1(self):
        from repro.core.serialize import attach_frozen

        with pytest.raises(IndexFormatError, match="cannot attach"):
            attach_frozen(
                b"WCXB" + (1).to_bytes(2, "little") + b"\x00" * 12
            )
