"""Tests for WC-INDEX serialization."""

import io

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.core import WCIndexBuilder, build_wc_index_plus
from repro.core.serialize import IndexFormatError, load_index, save_index
from repro.graph.generators import paper_figure3


def round_trip(index):
    buffer = io.StringIO()
    save_index(index, buffer)
    buffer.seek(0)
    return load_index(buffer)


class TestRoundTrip:
    def test_entries_preserved(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        loaded = round_trip(index)
        assert loaded.order == index.order
        for v in range(index.num_vertices):
            assert loaded.entries_of(v) == index.entries_of(v)

    def test_answers_preserved(self):
        for trial in range(6):
            g = random_graph(trial)
            index = build_wc_index_plus(g, "degree")
            loaded = round_trip(index)
            for w in thresholds_for(g):
                for s in g.vertices():
                    for t in g.vertices():
                        assert loaded.distance(s, t, w) == index.distance(
                            s, t, w
                        )

    def test_parents_preserved(self):
        g = paper_figure3()
        index = WCIndexBuilder(g, "identity", track_parents=True).build()
        loaded = round_trip(index)
        assert loaded.tracks_parents
        for v in range(g.num_vertices):
            assert loaded.parent_list(v) == index.parent_list(v)

    def test_infinity_quality_survives(self):
        index = build_wc_index_plus(paper_figure3(), "identity")
        loaded = round_trip(index)
        _, _, quals = loaded.label_lists(0)
        assert quals[0] == float("inf")

    def test_file_round_trip(self, tmp_path):
        index = build_wc_index_plus(paper_figure3())
        path = tmp_path / "example.wci"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.entry_count() == index.entry_count()

    def test_gzip_round_trip(self, tmp_path):
        index = build_wc_index_plus(paper_figure3())
        path = tmp_path / "example.wci.gz"
        save_index(index, path)
        assert load_index(path).entry_count() == index.entry_count()
        # Must actually be gzip: starts with the magic bytes.
        assert path.read_bytes()[:2] == b"\x1f\x8b"


class TestFormatErrors:
    def test_empty_file(self):
        with pytest.raises(IndexFormatError, match="empty"):
            load_index(io.StringIO(""))

    def test_bad_magic(self):
        with pytest.raises(IndexFormatError, match="header"):
            load_index(io.StringIO("NOTANINDEX 1 2 0\n"))

    def test_bad_version(self):
        with pytest.raises(IndexFormatError, match="version"):
            load_index(io.StringIO("WCINDEX 99 1 0\nO 0\nV 0 0\n"))

    def test_truncated_entries(self):
        text = "WCINDEX 1 1 0\nO 0\nV 0 2\nE 0 0.0 inf\n"
        with pytest.raises(IndexFormatError, match="end of file"):
            load_index(io.StringIO(text))

    def test_order_not_permutation(self):
        with pytest.raises(IndexFormatError, match="permutation"):
            load_index(io.StringIO("WCINDEX 1 2 0\nO 0 0\nV 0 0\nV 1 0\n"))

    def test_hub_out_of_range(self):
        text = "WCINDEX 1 1 0\nO 0\nV 0 1\nE 7 0.0 inf\n"
        with pytest.raises(IndexFormatError, match="hub rank"):
            load_index(io.StringIO(text))

    def test_vertex_out_of_range(self):
        text = "WCINDEX 1 1 0\nO 0\nV 5 0\n"
        with pytest.raises(IndexFormatError, match="out of range"):
            load_index(io.StringIO(text))

    def test_malformed_entry(self):
        text = "WCINDEX 1 1 0\nO 0\nV 0 1\nE zero one two\n"
        with pytest.raises(IndexFormatError):
            load_index(io.StringIO(text))

    def test_comments_and_blanks_tolerated(self):
        index = build_wc_index_plus(paper_figure3())
        buffer = io.StringIO()
        save_index(index, buffer)
        noisy = "# saved index\n\n" + buffer.getvalue()
        assert load_index(io.StringIO(noisy)).entry_count() == index.entry_count()
