"""Tests for WC-INDEX construction (Algorithm 3)."""

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.online import ConstrainedBFS
from repro.core import (
    WCIndexBuilder,
    build_wc_index,
    build_wc_index_plus,
)
from repro.graph.generators import (
    gnm_random_graph,
    grid_road_network,
    paper_figure3,
    path_graph,
    scale_free_network,
)

INF = float("inf")

#: Table II of the paper, transcribed: vertex -> list of (hub, dist, w).
TABLE_II = {
    0: [(0, 0, INF)],
    1: [(0, 1, 3.0), (1, 0, INF)],
    2: [(0, 2, 3.0), (1, 1, 5.0), (2, 0, INF)],
    3: [
        (0, 1, 1.0),
        (0, 2, 2.0),
        (0, 3, 3.0),
        (1, 1, 2.0),
        (1, 2, 4.0),
        (2, 1, 4.0),
        (3, 0, INF),
    ],
    4: [
        (0, 2, 1.0),
        (0, 3, 2.0),
        (0, 4, 3.0),
        (1, 2, 2.0),
        (1, 3, 4.0),
        (2, 2, 4.0),
        (3, 1, 4.0),
        (4, 0, INF),
    ],
    5: [
        (0, 2, 1.0),
        (0, 3, 2.0),
        (0, 5, 3.0),
        (1, 2, 2.0),
        (1, 4, 3.0),
        (2, 2, 2.0),
        (2, 3, 3.0),
        (3, 1, 2.0),
        (3, 2, 3.0),
        (4, 1, 3.0),
        (5, 0, INF),
    ],
}


class TestGoldenTableII:
    """The running example must reproduce the paper's index exactly."""

    @pytest.mark.parametrize("kernel", ["naive", "binary", "linear"])
    def test_label_sets_match_paper(self, kernel):
        index = WCIndexBuilder(
            paper_figure3(), ordering="identity", query_kernel=kernel
        ).build()
        for v, expected in TABLE_II.items():
            got = sorted((h, int(d), q) for h, d, q in index.entries_of(v))
            assert got == sorted(expected), f"L(v{v})"

    def test_example3_query_walkthrough(self):
        index = build_wc_index_plus(paper_figure3(), ordering="identity")
        assert index.distance(2, 5, 2.0) == 2.0  # the worked Example 3

    def test_entry_count_matches_paper(self):
        index = build_wc_index_plus(paper_figure3(), ordering="identity")
        assert index.entry_count() == sum(len(v) for v in TABLE_II.values())


class TestBuilderConfiguration:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="query_kernel"):
            WCIndexBuilder(path_graph(3), query_kernel="warp")

    def test_rejects_bad_ordering(self):
        with pytest.raises(ValueError):
            WCIndexBuilder(path_graph(3), ordering="nope")
        with pytest.raises(ValueError):
            WCIndexBuilder(path_graph(3), ordering=[0, 0, 1])

    def test_order_property(self):
        builder = WCIndexBuilder(path_graph(4), ordering="identity")
        assert builder.order == [0, 1, 2, 3]

    def test_explicit_order_sequence(self):
        index = WCIndexBuilder(path_graph(4), ordering=[3, 2, 1, 0]).build()
        assert index.order == [3, 2, 1, 0]

    def test_callable_ordering(self):
        index = WCIndexBuilder(
            path_graph(4), ordering=lambda g: list(reversed(range(4)))
        ).build()
        assert index.order == [3, 2, 1, 0]


class TestKernelEquivalence:
    """All construction kernels and the memo must yield the same index."""

    @pytest.mark.parametrize("trial", range(8))
    def test_same_entries_regardless_of_kernel(self, trial):
        g = random_graph(trial)
        reference = None
        for kernel in ("naive", "binary", "linear"):
            for memo in (False, True):
                index = WCIndexBuilder(
                    g, "degree", query_kernel=kernel, further_pruning=memo
                ).build()
                entries = [sorted(index.entries_of(v)) for v in g.vertices()]
                if reference is None:
                    reference = entries
                else:
                    assert entries == reference, (trial, kernel, memo)

    def test_basic_and_plus_build_identical_indexes(self):
        g = grid_road_network(6, 6, seed=2)
        basic = build_wc_index(g, "hybrid")
        plus = build_wc_index_plus(g, "hybrid")
        for v in g.vertices():
            assert basic.entries_of(v) == plus.entries_of(v)


class TestCorrectnessAcrossOrderings:
    @pytest.mark.parametrize("ordering", ["degree", "treedec", "hybrid", "identity"])
    def test_answers_match_bfs(self, ordering):
        g = gnm_random_graph(18, 40, num_qualities=4, seed=13)
        index = WCIndexBuilder(g, ordering).build()
        oracle = ConstrainedBFS(g)
        for w in thresholds_for(g):
            for s in g.vertices():
                truth = oracle.single_source(s, w)
                for t in g.vertices():
                    assert index.distance(s, t, w) == truth[t], (ordering, s, t, w)

    def test_random_ordering_correct(self):
        g = gnm_random_graph(14, 30, num_qualities=3, seed=5)
        index = WCIndexBuilder(g, "random").build()
        oracle = ConstrainedBFS(g)
        for s in g.vertices():
            truth = oracle.single_source(s, 2.0)
            for t in g.vertices():
                assert index.distance(s, t, 2.0) == truth[t]


class TestDeterminism:
    def test_identical_rebuilds(self):
        g = scale_free_network(50, 3, seed=9)
        a = build_wc_index_plus(g)
        b = build_wc_index_plus(g)
        for v in g.vertices():
            assert a.entries_of(v) == b.entries_of(v)


class TestStats:
    def test_stats_populated(self):
        g = grid_road_network(5, 5, seed=1)
        builder = WCIndexBuilder(g, "degree")
        index = builder.build()
        stats = builder.stats
        assert stats.num_vertices == g.num_vertices
        assert stats.num_edges == g.num_edges
        assert stats.entries_added == index.entry_count()
        assert stats.candidates >= stats.query_pruned + stats.memo_pruned
        assert stats.build_seconds > 0
        assert stats.label_entries_per_vertex == pytest.approx(
            index.entry_count() / g.num_vertices
        )
        assert stats.as_dict()["ordering"] == "degree"

    def test_memo_disabled_counts_zero(self):
        g = grid_road_network(5, 5, seed=1)
        builder = WCIndexBuilder(g, "degree", further_pruning=False)
        builder.build()
        assert builder.stats.memo_pruned == 0

    def test_pruning_keeps_index_subquadratic(self):
        # Every entry the index holds is useful: the total must be far less
        # than the quadratic all-pairs Pareto storage (n^2 pairs, up to |w|
        # entries each).
        g = scale_free_network(60, 3, seed=4)
        index = build_wc_index_plus(g)
        assert index.entry_count() < g.num_vertices * g.num_vertices / 2


class TestEdgeCases:
    def test_empty_graph(self):
        from repro.graph.graph import Graph

        index = build_wc_index_plus(Graph(0))
        assert index.entry_count() == 0

    def test_single_vertex(self):
        from repro.graph.graph import Graph

        index = build_wc_index_plus(Graph(1))
        assert index.distance(0, 0, 5.0) == 0.0
        assert index.entry_count() == 1

    def test_no_edges(self):
        from repro.graph.graph import Graph

        index = build_wc_index_plus(Graph(3))
        assert index.distance(0, 2, 1.0) == INF
        assert index.entry_count() == 3  # self entries only

    def test_uniform_quality_collapses_to_pll_shape(self):
        # With one distinct quality every label has exactly one entry per
        # hub (no Pareto staircase).
        g = gnm_random_graph(16, 40, num_qualities=1, seed=8)
        index = build_wc_index_plus(g, "degree")
        for v in g.vertices():
            hubs, _, _ = index.label_lists(v)
            assert len(hubs) == len(set(hubs))
