"""Tests for the index invariant checkers — including that they actually
catch planted violations (failure injection)."""

from tests.helpers import random_graph

from repro.core import WCIndexBuilder, build_wc_index_plus
from repro.core.validation import (
    completeness_violations,
    dominated_entries,
    soundness_violations,
    theorem3_violations,
    unnecessary_entries,
    verify_index,
)
from repro.graph.generators import paper_figure3, path_graph

INF = float("inf")


class TestCleanIndexesPass:
    def test_paper_example(self):
        g = paper_figure3()
        report = verify_index(build_wc_index_plus(g, "identity"), g)
        assert report.ok
        assert report.sound and report.complete
        assert report.theorem3 and report.no_dominated and report.no_unnecessary

    def test_random_graphs(self):
        for trial in range(6):
            g = random_graph(trial, max_n=12)
            report = verify_index(WCIndexBuilder(g, "degree").build(), g)
            assert report.ok, (trial, report.details)


class TestPlantedViolations:
    """Each checker must flag a deliberately corrupted index."""

    def build_clean(self):
        g = path_graph(4, [2.0, 1.0, 3.0])
        return g, WCIndexBuilder(g, "identity").build()

    def test_theorem3_catches_misordered_group(self):
        g, index = self.build_clean()
        # Append an entry whose distance regresses within its hub group.
        hubs, dists, quals = index.label_lists(3)
        hubs.append(hubs[0])
        dists.append(dists[0])
        quals.append(quals[0])
        assert theorem3_violations(index)

    def test_dominated_catches_planted_dominated_entry(self):
        g, index = self.build_clean()
        index.insert_entry_sorted(3, 0, 9.0, 0.5)  # dominated by real entries
        # insert_entry_sorted refuses dominated inserts, so plant manually:
        hubs, dists, quals = index.label_lists(3)
        i = 0
        hubs.insert(i + 1, hubs[i])
        dists.insert(i + 1, dists[i] + 1.0)
        quals.insert(i + 1, quals[i])
        assert dominated_entries(index)

    def test_soundness_catches_fake_entry(self):
        g, index = self.build_clean()
        # Claim vertex 3 is one hop from vertex 0 at quality 99 — a lie.
        index.insert_entry_sorted(3, index.rank[0], 1.0, 99.0)
        assert soundness_violations(index, g)

    def test_completeness_catches_deleted_entry(self):
        g, index = self.build_clean()
        # Drop a non-self entry; some query must now be wrong.
        for v in range(4):
            hubs, dists, quals = index.label_lists(v)
            for i in range(len(hubs)):
                if dists[i] > 0:
                    del hubs[i], dists[i], quals[i]
                    assert completeness_violations(index, g), f"v={v}, i={i}"
                    return
        raise AssertionError("no non-self entry found")

    def test_unnecessary_catches_redundant_entry(self):
        g, index = self.build_clean()
        # Duplicate coverage: give vertex 3 a worse-but-feasible entry for
        # a pair already covered (same hub, same distance cannot be used —
        # craft one dominated across hubs instead).
        hubs, dists, quals = index.label_lists(3)
        # Entry (hub 0, d, w) where the pair (order[0], 3) is already
        # answerable within d at quality w through existing hubs.
        h0 = hubs[0]
        d0 = dists[0]
        q0 = quals[0]
        hubs.append(h0)
        dists.append(d0 + 2.0)
        quals.append(q0 + 0.5)
        # The appended entry may violate several invariants; at minimum the
        # necessity checker must not call the index minimal.
        report = verify_index(index, g)
        assert not report.ok


class TestReportStructure:
    def test_details_keys(self):
        g = paper_figure3()
        report = verify_index(build_wc_index_plus(g, "identity"), g)
        assert set(report.details) == {
            "theorem3_violations",
            "dominated_entries",
            "unnecessary_entries",
            "soundness_violations",
            "completeness_violations",
        }

    def test_custom_thresholds(self):
        g = paper_figure3()
        index = build_wc_index_plus(g, "identity")
        assert completeness_violations(index, g, thresholds=[2.0, 3.0]) == []
