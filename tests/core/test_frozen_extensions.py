"""Tests for the frozen flat-array engines of the Section V extensions
(FrozenDirectedWCIndex / FrozenWeightedWCIndex)."""

import random

import pytest

from repro.baselines.online import DirectedConstrainedBFS
from repro.core import (
    DirectedWCIndex,
    FrozenDirectedWCIndex,
    FrozenWeightedWCIndex,
    WeightedWCIndex,
    constrained_dijkstra,
)
from repro.graph.digraph import DiGraph
from repro.graph.weighted import WeightedGraph
from repro.workloads.queries import random_queries

INF = float("inf")


def random_digraph(trial: int, max_n: int = 12) -> DiGraph:
    rng = random.Random(trial)
    n = rng.randint(2, max_n)
    g = DiGraph(n)
    for _ in range(rng.randint(0, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, float(rng.randint(1, 4)))
    return g


def random_weighted_graph(trial: int, max_n: int = 12) -> WeightedGraph:
    rng = random.Random(trial)
    n = rng.randint(2, max_n)
    g = WeightedGraph(n)
    for _ in range(rng.randint(0, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(
                u, v, float(rng.randint(1, 9)), float(rng.randint(1, 4))
            )
    return g


def thresholds(graph) -> list:
    qualities = graph.distinct_qualities() or [1.0]
    return [0.5] + qualities + [qualities[-1] + 1.0]


class TestFrozenDirectedMatchesOracle:
    @pytest.mark.parametrize("trial", range(8))
    def test_distance_matches_list_engine_and_bfs(self, trial):
        g = random_digraph(trial)
        index = DirectedWCIndex(g)
        frozen = index.freeze()
        oracle = DirectedConstrainedBFS(g)
        for w in thresholds(g):
            for s in g.vertices():
                truth = oracle.single_source(s, w)
                for t in g.vertices():
                    assert frozen.distance(s, t, w) == truth[t]
                    assert frozen.distance(s, t, w) == index.distance(s, t, w)

    def test_asymmetry_respected(self):
        g = DiGraph(3, [(0, 1, 2.0), (1, 2, 2.0)])
        frozen = DirectedWCIndex(g).freeze()
        assert frozen.distance(0, 2, 1.0) == 2.0
        assert frozen.distance(2, 0, 1.0) == INF
        assert frozen.reachable(0, 2, 1.0)
        assert not frozen.reachable(2, 0, 1.0)

    def test_distance_many_matches_single(self):
        for trial in range(5):
            g = random_digraph(trial)
            index = DirectedWCIndex(g)
            frozen = index.freeze()
            workload = list(random_queries(g, 60, seed=trial))
            batch = frozen.distance_many(workload)
            assert batch == index.distance_many(workload)
            assert batch == [frozen.distance(s, t, w) for s, t, w in workload]

    def test_range_checked(self):
        frozen = DirectedWCIndex(DiGraph(2, [(0, 1, 1.0)])).freeze()
        with pytest.raises(ValueError):
            frozen.distance(0, 9, 1.0)
        with pytest.raises(ValueError):
            frozen.distance_many([(9, 0, 1.0)])


class TestFrozenDirectedRoundTrip:
    @pytest.mark.parametrize("track_parents", [False, True])
    def test_thaw_reproduces_labels(self, track_parents):
        for trial in range(5):
            g = random_digraph(trial)
            index = DirectedWCIndex(g, track_parents=track_parents)
            thawed = index.freeze().thaw()
            assert thawed.order == index.order
            assert thawed.tracks_parents == index.tracks_parents
            for v in g.vertices():
                assert thawed.in_label_lists(v) == index.in_label_lists(v)
                assert thawed.out_label_lists(v) == index.out_label_lists(v)
                if track_parents:
                    assert thawed.in_parent_list(v) == index.in_parent_list(v)
                    assert thawed.out_parent_list(v) == index.out_parent_list(v)

    def test_freeze_thaw_freeze_identical_arrays(self):
        g = random_digraph(3)
        frozen = DirectedWCIndex(g).freeze()
        refrozen = frozen.thaw().freeze()
        assert frozen.raw_sides() == refrozen.raw_sides()

    def test_frozen_is_independent_snapshot(self):
        g = DiGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        index = DirectedWCIndex(g)
        frozen = index.freeze()
        before = frozen.entry_count()
        index.in_label_lists(2)[0].append(0)
        assert frozen.entry_count() == before


class TestFrozenDirectedStructure:
    def test_entry_accounting_matches_list_engine(self):
        g = random_digraph(5)
        index = DirectedWCIndex(g)
        frozen = index.freeze()
        assert frozen.entry_count() == index.entry_count()
        assert frozen.num_vertices == index.num_vertices
        for v in g.vertices():
            assert frozen.in_entries_of(v) == index.in_entries_of(v)
            assert frozen.out_entries_of(v) == index.out_entries_of(v)

    def test_footprint_positive_and_reported(self):
        g = DiGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        frozen = DirectedWCIndex(g).freeze()
        assert frozen.nbytes() > 0
        assert frozen.size_bytes() == frozen.nbytes()
        assert "FrozenDirectedWCIndex" in repr(frozen)

    def test_constructor_validates_sides(self):
        from repro.core.frozen import _FlatSide

        g = DiGraph(2, [(0, 1, 1.0)])
        frozen = DirectedWCIndex(g).freeze()
        in_side, out_side = frozen._in, frozen._out
        with pytest.raises(ValueError, match="vertex order"):
            FrozenDirectedWCIndex([0], in_side, out_side)
        with_parents = DirectedWCIndex(g, track_parents=True).freeze()
        with pytest.raises(ValueError, match="both sides"):
            FrozenDirectedWCIndex([0, 1], with_parents._in, out_side)
        # _FlatSide itself rejects inconsistent arrays.
        from array import array

        with pytest.raises(ValueError, match="offsets"):
            _FlatSide(2, array("q", [0, 1]), array("i"), array("d"), array("d"))


class TestFrozenWeightedMatchesOracle:
    @pytest.mark.parametrize("trial", range(8))
    def test_distance_matches_list_engine_and_dijkstra(self, trial):
        g = random_weighted_graph(trial)
        index = WeightedWCIndex(g)
        frozen = index.freeze()
        for w in thresholds(g):
            for s in g.vertices():
                for t in g.vertices():
                    expected = constrained_dijkstra(g, s, t, w)
                    assert frozen.distance(s, t, w) == expected
                    assert index.distance(s, t, w) == expected

    def test_real_valued_distances_survive(self):
        g = WeightedGraph(3, [(0, 1, 0.5, 1.0), (1, 2, 0.25, 1.0)])
        frozen = WeightedWCIndex(g).freeze()
        assert frozen.distance(0, 2, 1.0) == 0.75

    def test_distance_many_matches_single(self):
        for trial in range(5):
            g = random_weighted_graph(trial)
            index = WeightedWCIndex(g)
            frozen = index.freeze()
            workload = list(random_queries(g, 60, seed=trial))
            batch = frozen.distance_many(workload)
            assert batch == index.distance_many(workload)
            assert batch == [frozen.distance(s, t, w) for s, t, w in workload]

    def test_range_checked(self):
        frozen = WeightedWCIndex(WeightedGraph(2, [(0, 1, 1.0, 1.0)])).freeze()
        with pytest.raises(ValueError):
            frozen.distance(0, 9, 1.0)
        with pytest.raises(ValueError):
            frozen.distance_many([(9, 0, 1.0)])


class TestFrozenWeightedRoundTrip:
    @pytest.mark.parametrize("track_parents", [False, True])
    def test_thaw_reproduces_labels(self, track_parents):
        for trial in range(5):
            g = random_weighted_graph(trial)
            index = WeightedWCIndex(g, track_parents=track_parents)
            thawed = index.freeze().thaw()
            assert thawed.order == index.order
            assert thawed.tracks_parents == index.tracks_parents
            for v in g.vertices():
                assert thawed.label_lists(v) == index.label_lists(v)
                if track_parents:
                    assert thawed.parent_pairs(v) == index.parent_pairs(v)

    def test_thawed_paths_still_work(self):
        g = WeightedGraph(
            3, [(0, 2, 10.0, 5.0), (0, 1, 2.0, 5.0), (1, 2, 3.0, 5.0)]
        )
        index = WeightedWCIndex(g, track_parents=True)
        thawed = index.freeze().thaw()
        assert thawed.path(0, 2, 1.0) == [0, 1, 2]

    def test_freeze_thaw_freeze_identical_arrays(self):
        g = random_weighted_graph(3)
        frozen = WeightedWCIndex(g, track_parents=True).freeze()
        refrozen = frozen.thaw().freeze()
        assert frozen.raw_arrays() == refrozen.raw_arrays()


class TestFrozenWeightedStructure:
    def test_entry_accounting_matches_list_engine(self):
        g = random_weighted_graph(5)
        index = WeightedWCIndex(g)
        frozen = index.freeze()
        assert frozen.entry_count() == index.entry_count()
        assert frozen.num_vertices == index.num_vertices
        for v in g.vertices():
            assert frozen.entries_of(v) == index.entries_of(v)
            assert frozen.label_size(v) == len(index.label_lists(v)[0])

    def test_parent_pairs_require_tracking(self):
        g = WeightedGraph(2, [(0, 1, 1.0, 1.0)])
        frozen = WeightedWCIndex(g).freeze()
        assert not frozen.tracks_parents
        with pytest.raises(ValueError, match="parent"):
            frozen.parent_pairs(0)

    def test_footprint_positive_and_reported(self):
        g = WeightedGraph(2, [(0, 1, 1.0, 1.0)])
        frozen = WeightedWCIndex(g, track_parents=True).freeze()
        assert frozen.nbytes() > 0
        assert frozen.size_bytes() == frozen.nbytes()
        assert "FrozenWeightedWCIndex" in repr(frozen)

    def test_constructor_validates_parent_arrays(self):
        from array import array

        g = WeightedGraph(2, [(0, 1, 1.0, 1.0)])
        frozen = WeightedWCIndex(g).freeze()
        side = frozen._side
        with pytest.raises(ValueError, match="come together"):
            FrozenWeightedWCIndex([0, 1], side, array("i", [0]), None)
        with pytest.raises(ValueError, match="disagree"):
            FrozenWeightedWCIndex(
                [0, 1], side, array("i", [0]), array("i", [0])
            )
