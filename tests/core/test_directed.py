"""Tests for the directed WC-INDEX (Section V)."""

from collections import deque

import pytest

from repro.core.directed import DirectedWCIndex, degree_order_directed
from repro.core.labels import BYTES_PER_ENTRY
from repro.graph.digraph import DiGraph

INF = float("inf")


def directed_bfs(graph: DiGraph, s: int, t: int, w: float) -> float:
    """Directed constrained BFS oracle."""
    if s == t:
        return 0.0
    dist = {s: 0}
    queue = deque([s])
    while queue:
        u = queue.popleft()
        for v, quality in graph.successors(u):
            if quality >= w and v not in dist:
                dist[v] = dist[u] + 1
                if v == t:
                    return float(dist[v])
                queue.append(v)
    return INF


def random_digraph(trial: int, max_n: int = 12) -> DiGraph:
    import random

    rng = random.Random(trial)
    n = rng.randint(2, max_n)
    g = DiGraph(n)
    for _ in range(rng.randint(0, 3 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, float(rng.randint(1, 4)))
    return g


class TestDirectedCorrectness:
    @pytest.mark.parametrize("trial", range(15))
    def test_matches_directed_bfs(self, trial):
        g = random_digraph(trial)
        index = DirectedWCIndex(g)
        qualities = g.distinct_qualities() or [1.0]
        for w in qualities + [qualities[-1] + 1, 0.5]:
            for s in g.vertices():
                for t in g.vertices():
                    assert index.distance(s, t, w) == directed_bfs(g, s, t, w), (
                        trial,
                        s,
                        t,
                        w,
                    )

    def test_asymmetry_respected(self):
        g = DiGraph(3, [(0, 1, 2.0), (1, 2, 2.0)])
        index = DirectedWCIndex(g)
        assert index.distance(0, 2, 1.0) == 2.0
        assert index.distance(2, 0, 1.0) == INF

    def test_antiparallel_different_qualities(self):
        g = DiGraph(2, [(0, 1, 1.0), (1, 0, 5.0)])
        index = DirectedWCIndex(g)
        assert index.distance(0, 1, 3.0) == INF
        assert index.distance(1, 0, 3.0) == 1.0

    def test_cycle(self):
        g = DiGraph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
        index = DirectedWCIndex(g)
        assert index.distance(0, 3, 1.0) == 3.0
        assert index.distance(3, 0, 1.0) == 1.0


class TestDirectedStructure:
    def test_order_validation(self):
        g = DiGraph(3, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            DirectedWCIndex(g, order=[0, 1, 1])

    def test_degree_order_directed(self):
        g = DiGraph(3, [(0, 1, 1.0), (0, 2, 1.0), (1, 0, 1.0)])
        assert degree_order_directed(g)[0] == 0  # total degree 3

    def test_query_range_checked(self):
        g = DiGraph(2, [(0, 1, 1.0)])
        index = DirectedWCIndex(g)
        with pytest.raises(ValueError):
            index.distance(0, 5, 1.0)

    def test_entry_accounting(self):
        g = DiGraph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        index = DirectedWCIndex(g)
        # At least the self entries on both sides.
        assert index.entry_count() >= 6
        assert index.size_bytes() == BYTES_PER_ENTRY * index.entry_count()

    def test_entries_introspection(self):
        g = DiGraph(2, [(0, 1, 3.0)])
        index = DirectedWCIndex(g, order=[0, 1])
        assert (0, 1.0, 3.0) in index.in_entries_of(1)  # 0 -> 1 certified
        assert (1, 0.0, INF) in index.out_entries_of(1)

    def test_repr(self):
        g = DiGraph(2, [(0, 1, 1.0)])
        assert "DirectedWCIndex" in repr(DirectedWCIndex(g))


class TestDirectedProfile:
    def test_profile_matches_directed_bfs(self):
        from repro.core.profile import profile_distance, profile_is_staircase

        for trial in range(6):
            g = random_digraph(trial)
            index = DirectedWCIndex(g)
            qualities = g.distinct_qualities() or [1.0]
            for s in g.vertices():
                for t in g.vertices():
                    profile = index.distance_profile(s, t)
                    assert profile_is_staircase(profile)
                    for w in qualities + [qualities[-1] + 1, 0.5]:
                        assert profile_distance(profile, w) == directed_bfs(
                            g, s, t, w
                        ), (trial, s, t, w)

    def test_profile_is_asymmetric(self):
        g = DiGraph(2, [(0, 1, 3.0)])
        index = DirectedWCIndex(g)
        assert index.distance_profile(0, 1) == [(3.0, 1.0)]
        assert index.distance_profile(1, 0) == []

    def test_self_profile(self):
        g = DiGraph(2, [(0, 1, 1.0)])
        index = DirectedWCIndex(g)
        assert index.distance_profile(0, 0) == [(INF, 0.0)]

    def test_profile_range_checked(self):
        g = DiGraph(2, [(0, 1, 1.0)])
        index = DirectedWCIndex(g)
        with pytest.raises(ValueError):
            index.distance_profile(0, 5)


def is_valid_directed_w_path(graph: DiGraph, path, w: float) -> bool:
    for a, b in zip(path, path[1:]):
        if not graph.has_edge(a, b) or graph.quality(a, b) < w:
            return False
    return True


class TestDirectedPaths:
    def test_requires_parent_tracking(self):
        g = DiGraph(2, [(0, 1, 1.0)])
        index = DirectedWCIndex(g)
        with pytest.raises(ValueError, match="track_parents"):
            index.path(0, 1, 1.0)

    def test_simple_chain(self):
        g = DiGraph(4, [(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
        index = DirectedWCIndex(g, track_parents=True)
        assert index.path(0, 3, 2.0) == [0, 1, 2, 3]
        assert index.path(3, 0, 1.0) is None
        assert index.path(2, 2, 9.0) == [2]

    def test_quality_forces_detour(self):
        g = DiGraph(
            4,
            [
                (0, 3, 1.0),  # direct but low quality
                (0, 1, 3.0),
                (1, 2, 3.0),
                (2, 3, 3.0),
            ],
        )
        index = DirectedWCIndex(g, track_parents=True)
        assert index.path(0, 3, 1.0) == [0, 3]
        assert index.path(0, 3, 2.0) == [0, 1, 2, 3]

    @pytest.mark.parametrize("trial", range(10))
    def test_paths_valid_and_shortest(self, trial):
        g = random_digraph(trial)
        index = DirectedWCIndex(g, track_parents=True)
        qualities = g.distinct_qualities() or [1.0]
        for w in qualities + [0.5]:
            for s in g.vertices():
                for t in g.vertices():
                    expected = directed_bfs(g, s, t, w)
                    path = index.path(s, t, w)
                    if expected == INF:
                        assert path is None, (trial, s, t, w)
                        continue
                    assert path is not None
                    assert path[0] == s and path[-1] == t
                    assert len(path) - 1 == expected, (trial, s, t, w)
                    assert is_valid_directed_w_path(g, path, w)


class TestAgainstUndirectedEquivalence:
    def test_symmetric_digraph_matches_undirected_index(self):
        from repro.core import build_wc_index_plus
        from repro.graph.generators import gnm_random_graph

        und = gnm_random_graph(12, 25, num_qualities=3, seed=21)
        dig = DiGraph(12)
        for u, v, q in und.edges():
            dig.add_edge(u, v, q)
            dig.add_edge(v, u, q)
        directed = DirectedWCIndex(dig)
        undirected = build_wc_index_plus(und, "degree")
        for w in (0.5, 1.0, 2.0, 3.0, 4.0):
            for s in range(12):
                for t in range(12):
                    assert directed.distance(s, t, w) == undirected.distance(
                        s, t, w
                    )
