"""Tests for the dynamic WC-INDEX (insertion repair + deletion rebuild)."""

import random

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.online import ConstrainedBFS
from repro.core import DynamicWCIndex
from repro.graph.generators import gnm_random_graph, path_graph
from repro.graph.graph import Graph

INF = float("inf")


def assert_matches_oracle(dyn: DynamicWCIndex, context=""):
    oracle = ConstrainedBFS(dyn.graph)
    for w in thresholds_for(dyn.graph):
        for s in dyn.graph.vertices():
            truth = oracle.single_source(s, w)
            for t in dyn.graph.vertices():
                assert dyn.distance(s, t, w) == truth[t], (context, s, t, w)


class TestInsertion:
    def test_insert_connects_components(self):
        g = Graph(4, [(0, 1, 2.0), (2, 3, 2.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 3, 1.0) == INF
        dyn.insert_edge(1, 2, 3.0)
        assert dyn.distance(0, 3, 1.0) == 3.0
        assert dyn.distance(0, 3, 2.5) == INF  # bottleneck edges are 2.0
        assert_matches_oracle(dyn, "connect")

    def test_insert_shortcut_updates_distance(self):
        dyn = DynamicWCIndex(path_graph(6))
        assert dyn.distance(0, 5, 1.0) == 5.0
        dyn.insert_edge(0, 5, 1.0)
        assert dyn.distance(0, 5, 1.0) == 1.0
        assert_matches_oracle(dyn, "shortcut")

    def test_insert_higher_quality_parallel_edge(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 2, 2.0) == INF
        dyn.insert_edge(0, 1, 3.0)
        dyn.insert_edge(1, 2, 3.0)
        assert dyn.distance(0, 2, 2.0) == 2.0
        assert_matches_oracle(dyn, "upgrade")

    def test_insert_lower_quality_parallel_edge_is_noop(self):
        g = Graph(2, [(0, 1, 5.0)])
        dyn = DynamicWCIndex(g)
        before = dyn.index.entry_count()
        dyn.insert_edge(0, 1, 1.0)
        assert dyn.graph.quality(0, 1) == 5.0
        assert dyn.index.entry_count() == before

    @pytest.mark.parametrize("trial", range(10))
    def test_random_insertion_sequences(self, trial):
        rng = random.Random(trial)
        g = random_graph(trial, max_n=12)
        dyn = DynamicWCIndex(g.copy())
        n = g.num_vertices
        for step in range(8):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            dyn.insert_edge(u, v, float(rng.randint(1, 5)))
            assert_matches_oracle(dyn, f"trial {trial} step {step}")

    def test_incremental_equals_scratch_answers(self):
        # Label sets may differ (minimality is not preserved), but answers
        # must match a from-scratch build exactly.
        from repro.core import build_wc_index_plus

        g = gnm_random_graph(10, 12, num_qualities=3, seed=17)
        dyn = DynamicWCIndex(g.copy(), ordering="degree")
        dyn.insert_edge(0, 9, 2.0)
        dyn.insert_edge(3, 7, 1.0)
        scratch = build_wc_index_plus(dyn.graph, "degree")
        for w in thresholds_for(dyn.graph):
            for s in range(10):
                for t in range(10):
                    assert dyn.distance(s, t, w) == scratch.distance(s, t, w)


class TestDeletion:
    def test_delete_disconnects(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        dyn = DynamicWCIndex(g)
        dyn.remove_edge(1, 2)
        assert dyn.distance(0, 2, 1.0) == INF
        assert_matches_oracle(dyn, "disconnect")

    def test_delete_forces_detour(self):
        g = Graph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        dyn = DynamicWCIndex(g)
        dyn.remove_edge(0, 1)
        assert dyn.distance(0, 3, 1.0) == 2.0  # via vertex 2
        assert_matches_oracle(dyn, "detour")

    def test_delete_missing_edge_raises(self):
        dyn = DynamicWCIndex(path_graph(3))
        with pytest.raises(KeyError):
            dyn.remove_edge(0, 2)

    @pytest.mark.parametrize("trial", range(6))
    def test_random_mixed_updates(self, trial):
        rng = random.Random(100 + trial)
        g = gnm_random_graph(
            10, 16, num_qualities=3, seed=trial
        )
        dyn = DynamicWCIndex(g.copy())
        for step in range(6):
            edges = list(dyn.graph.edges())
            if edges and rng.random() < 0.4:
                u, v, _ = rng.choice(edges)
                dyn.remove_edge(u, v)
            else:
                u, v = rng.randrange(10), rng.randrange(10)
                if u == v:
                    continue
                dyn.insert_edge(u, v, float(rng.randint(1, 3)))
            assert_matches_oracle(dyn, f"trial {trial} step {step}")


class TestBatchAndQualityChange:
    def test_insert_edges_batch(self):
        dyn = DynamicWCIndex(Graph(4, [(0, 1, 1.0)]))
        dyn.insert_edges([(1, 2, 2.0), (2, 3, 3.0)])
        assert dyn.distance(0, 3, 1.0) == 3.0
        assert_matches_oracle(dyn, "batch-insert")

    def test_remove_edges_batch(self):
        # 5-cycle plus a chord; dropping the chord and one cycle edge
        # forces the long way round in a single rebuild.
        g = Graph(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
                (0, 2, 1.0),
            ],
        )
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 1, 1.0) == 1.0
        dyn.remove_edges([(0, 1), (0, 2)])
        assert dyn.distance(0, 1, 1.0) == 4.0  # 0-4-3-2-1
        assert_matches_oracle(dyn, "batch-remove")

    def test_quality_increase_incremental(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 3.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 2, 2.0) == INF
        dyn.change_quality(0, 1, 3.0)
        assert dyn.distance(0, 2, 2.0) == 2.0
        assert_matches_oracle(dyn, "quality-up")

    def test_quality_decrease_rebuilds(self):
        g = Graph(3, [(0, 1, 3.0), (1, 2, 3.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 2, 2.0) == 2.0
        dyn.change_quality(0, 1, 1.0)
        assert dyn.distance(0, 2, 2.0) == INF
        assert dyn.graph.quality(0, 1) == 1.0
        assert_matches_oracle(dyn, "quality-down")

    def test_quality_noop(self):
        g = Graph(2, [(0, 1, 2.0)])
        dyn = DynamicWCIndex(g)
        before = dyn.index.entry_count()
        dyn.change_quality(0, 1, 2.0)
        assert dyn.index.entry_count() == before

    def test_change_quality_missing_edge_raises(self):
        dyn = DynamicWCIndex(path_graph(3))
        with pytest.raises(KeyError):
            dyn.change_quality(0, 2, 5.0)

    @pytest.mark.parametrize("trial", range(5))
    def test_random_quality_changes(self, trial):
        rng = random.Random(500 + trial)
        g = gnm_random_graph(9, 14, num_qualities=3, seed=trial)
        dyn = DynamicWCIndex(g.copy())
        for step in range(5):
            edges = list(dyn.graph.edges())
            u, v, _ = rng.choice(edges)
            dyn.change_quality(u, v, float(rng.randint(1, 4)))
            assert_matches_oracle(dyn, f"trial {trial} step {step}")


class TestRebuild:
    def test_full_rebuild_restores_minimality(self):
        from repro.core.validation import verify_index

        g = gnm_random_graph(9, 10, num_qualities=3, seed=23)
        dyn = DynamicWCIndex(g.copy())
        dyn.insert_edge(0, 8, 3.0)
        dyn.insert_edge(1, 7, 2.0)
        dyn.rebuild()
        report = verify_index(dyn.index, dyn.graph)
        assert report.ok, report.details
