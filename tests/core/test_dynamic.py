"""Tests for the dynamic WC-INDEX (insertion repair + deletion rebuild)."""

import random

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.online import ConstrainedBFS
from repro.core import DynamicWCIndex
from repro.graph.generators import gnm_random_graph, path_graph
from repro.graph.graph import Graph

INF = float("inf")


def assert_matches_oracle(dyn: DynamicWCIndex, context=""):
    oracle = ConstrainedBFS(dyn.graph)
    for w in thresholds_for(dyn.graph):
        for s in dyn.graph.vertices():
            truth = oracle.single_source(s, w)
            for t in dyn.graph.vertices():
                assert dyn.distance(s, t, w) == truth[t], (context, s, t, w)


class TestInsertion:
    def test_insert_connects_components(self):
        g = Graph(4, [(0, 1, 2.0), (2, 3, 2.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 3, 1.0) == INF
        dyn.insert_edge(1, 2, 3.0)
        assert dyn.distance(0, 3, 1.0) == 3.0
        assert dyn.distance(0, 3, 2.5) == INF  # bottleneck edges are 2.0
        assert_matches_oracle(dyn, "connect")

    def test_insert_shortcut_updates_distance(self):
        dyn = DynamicWCIndex(path_graph(6))
        assert dyn.distance(0, 5, 1.0) == 5.0
        dyn.insert_edge(0, 5, 1.0)
        assert dyn.distance(0, 5, 1.0) == 1.0
        assert_matches_oracle(dyn, "shortcut")

    def test_insert_higher_quality_parallel_edge(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 2, 2.0) == INF
        dyn.insert_edge(0, 1, 3.0)
        dyn.insert_edge(1, 2, 3.0)
        assert dyn.distance(0, 2, 2.0) == 2.0
        assert_matches_oracle(dyn, "upgrade")

    def test_insert_lower_quality_parallel_edge_is_noop(self):
        g = Graph(2, [(0, 1, 5.0)])
        dyn = DynamicWCIndex(g)
        before = dyn.index.entry_count()
        dyn.insert_edge(0, 1, 1.0)
        assert dyn.graph.quality(0, 1) == 5.0
        assert dyn.index.entry_count() == before

    @pytest.mark.parametrize("trial", range(10))
    def test_random_insertion_sequences(self, trial):
        rng = random.Random(trial)
        g = random_graph(trial, max_n=12)
        dyn = DynamicWCIndex(g.copy())
        n = g.num_vertices
        for step in range(8):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            dyn.insert_edge(u, v, float(rng.randint(1, 5)))
            assert_matches_oracle(dyn, f"trial {trial} step {step}")

    def test_incremental_equals_scratch_answers(self):
        # Label sets may differ (minimality is not preserved), but answers
        # must match a from-scratch build exactly.
        from repro.core import build_wc_index_plus

        g = gnm_random_graph(10, 12, num_qualities=3, seed=17)
        dyn = DynamicWCIndex(g.copy(), ordering="degree")
        dyn.insert_edge(0, 9, 2.0)
        dyn.insert_edge(3, 7, 1.0)
        scratch = build_wc_index_plus(dyn.graph, "degree")
        for w in thresholds_for(dyn.graph):
            for s in range(10):
                for t in range(10):
                    assert dyn.distance(s, t, w) == scratch.distance(s, t, w)


class TestDeletion:
    def test_delete_disconnects(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        dyn = DynamicWCIndex(g)
        dyn.remove_edge(1, 2)
        assert dyn.distance(0, 2, 1.0) == INF
        assert_matches_oracle(dyn, "disconnect")

    def test_delete_forces_detour(self):
        g = Graph(4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        dyn = DynamicWCIndex(g)
        dyn.remove_edge(0, 1)
        assert dyn.distance(0, 3, 1.0) == 2.0  # via vertex 2
        assert_matches_oracle(dyn, "detour")

    def test_delete_missing_edge_raises(self):
        dyn = DynamicWCIndex(path_graph(3))
        with pytest.raises(KeyError):
            dyn.remove_edge(0, 2)

    @pytest.mark.parametrize("trial", range(6))
    def test_random_mixed_updates(self, trial):
        rng = random.Random(100 + trial)
        g = gnm_random_graph(
            10, 16, num_qualities=3, seed=trial
        )
        dyn = DynamicWCIndex(g.copy())
        for step in range(6):
            edges = list(dyn.graph.edges())
            if edges and rng.random() < 0.4:
                u, v, _ = rng.choice(edges)
                dyn.remove_edge(u, v)
            else:
                u, v = rng.randrange(10), rng.randrange(10)
                if u == v:
                    continue
                dyn.insert_edge(u, v, float(rng.randint(1, 3)))
            assert_matches_oracle(dyn, f"trial {trial} step {step}")


class TestBatchAndQualityChange:
    def test_insert_edges_batch(self):
        dyn = DynamicWCIndex(Graph(4, [(0, 1, 1.0)]))
        dyn.insert_edges([(1, 2, 2.0), (2, 3, 3.0)])
        assert dyn.distance(0, 3, 1.0) == 3.0
        assert_matches_oracle(dyn, "batch-insert")

    def test_remove_edges_batch(self):
        # 5-cycle plus a chord; dropping the chord and one cycle edge
        # forces the long way round in a single rebuild.
        g = Graph(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
                (0, 2, 1.0),
            ],
        )
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 1, 1.0) == 1.0
        dyn.remove_edges([(0, 1), (0, 2)])
        assert dyn.distance(0, 1, 1.0) == 4.0  # 0-4-3-2-1
        assert_matches_oracle(dyn, "batch-remove")

    def test_quality_increase_incremental(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 3.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 2, 2.0) == INF
        dyn.change_quality(0, 1, 3.0)
        assert dyn.distance(0, 2, 2.0) == 2.0
        assert_matches_oracle(dyn, "quality-up")

    def test_quality_decrease_rebuilds(self):
        g = Graph(3, [(0, 1, 3.0), (1, 2, 3.0)])
        dyn = DynamicWCIndex(g)
        assert dyn.distance(0, 2, 2.0) == 2.0
        dyn.change_quality(0, 1, 1.0)
        assert dyn.distance(0, 2, 2.0) == INF
        assert dyn.graph.quality(0, 1) == 1.0
        assert_matches_oracle(dyn, "quality-down")

    def test_quality_noop(self):
        g = Graph(2, [(0, 1, 2.0)])
        dyn = DynamicWCIndex(g)
        before = dyn.index.entry_count()
        dyn.change_quality(0, 1, 2.0)
        assert dyn.index.entry_count() == before

    def test_change_quality_missing_edge_raises(self):
        dyn = DynamicWCIndex(path_graph(3))
        with pytest.raises(KeyError):
            dyn.change_quality(0, 2, 5.0)

    def test_change_quality_rejects_invalid_values_before_mutating(self):
        # Regression: the decrease path removed the edge before
        # add_edge could reject the bad quality, losing the edge.
        g = Graph(2, [(0, 1, 3.0)])
        dyn = DynamicWCIndex(g)
        with pytest.raises(ValueError, match="quality"):
            dyn.change_quality(0, 1, 0.0)
        assert dyn.graph.quality(0, 1) == 3.0
        assert dyn.distance(0, 1, 3.0) == 1.0

    @pytest.mark.parametrize("trial", range(5))
    def test_random_quality_changes(self, trial):
        rng = random.Random(500 + trial)
        g = gnm_random_graph(9, 14, num_qualities=3, seed=trial)
        dyn = DynamicWCIndex(g.copy())
        for step in range(5):
            edges = list(dyn.graph.edges())
            u, v, _ = rng.choice(edges)
            dyn.change_quality(u, v, float(rng.randint(1, 4)))
            assert_matches_oracle(dyn, f"trial {trial} step {step}")


class TestRebuild:
    def test_full_rebuild_restores_minimality(self):
        from repro.core.validation import verify_index

        g = gnm_random_graph(9, 10, num_qualities=3, seed=23)
        dyn = DynamicWCIndex(g.copy())
        dyn.insert_edge(0, 8, 3.0)
        dyn.insert_edge(1, 7, 2.0)
        dyn.rebuild()
        report = verify_index(dyn.index, dyn.graph)
        assert report.ok, report.details


def snapshot_labels(dyn):
    return {
        v: tuple(map(tuple, dyn.index.label_lists(v)))
        for v in dyn.graph.vertices()
    }


def changed_vertices(dyn, before):
    return {
        v
        for v in dyn.graph.vertices()
        if tuple(map(tuple, dyn.index.label_lists(v))) != before[v]
    }


class TestDirtyTracking:
    def test_insert_reports_exactly_the_changed_labels(self):
        g = Graph(4, [(0, 1, 2.0), (2, 3, 2.0)])
        dyn = DynamicWCIndex(g)
        before = snapshot_labels(dyn)
        dirty = dyn.insert_edge(1, 2, 3.0)
        assert dirty == changed_vertices(dyn, before)
        assert dirty  # connecting two components must change labels

    def test_noop_insert_reports_nothing(self):
        dyn = DynamicWCIndex(Graph(2, [(0, 1, 5.0)]))
        assert dyn.insert_edge(0, 1, 1.0) == set()

    def test_delete_reports_the_label_diff(self):
        g = gnm_random_graph(10, 16, num_qualities=3, seed=3)
        dyn = DynamicWCIndex(g.copy())
        before = snapshot_labels(dyn)
        order_before = list(dyn.index.order)
        u, v, _ = next(iter(dyn.graph.edges()))
        dirty = dyn.delete_edge(u, v)
        if dyn.index.order == order_before:
            assert dirty == changed_vertices(dyn, before)
        else:
            assert dirty == set(range(10))

    def test_order_change_marks_every_vertex_dirty(self):
        # Deleting vertex 2's last edge changes the recomputed hybrid
        # order on this graph, which invalidates every rank-encoded
        # label section.
        g = gnm_random_graph(8, 10, num_qualities=3, seed=1)
        dyn = DynamicWCIndex(g.copy())
        old_order = list(dyn.index.order)
        dirty = dyn.delete_edge(1, 2)
        assert dyn.index.order != old_order
        assert dirty == set(range(8))

    @pytest.mark.parametrize("trial", range(5))
    def test_mixed_stream_dirty_covers_all_changes(self, trial):
        rng = random.Random(40 + trial)
        g = gnm_random_graph(9, 14, num_qualities=3, seed=trial)
        dyn = DynamicWCIndex(g.copy())
        for _ in range(5):
            before = snapshot_labels(dyn)
            edges = list(dyn.graph.edges())
            if edges and rng.random() < 0.4:
                u, v, _ = rng.choice(edges)
                dirty = dyn.delete_edge(u, v)
            else:
                u, v = rng.randrange(9), rng.randrange(9)
                if u == v:
                    continue
                dirty = dyn.insert_edge(u, v, float(rng.randint(1, 3)))
            if dirty == set(range(9)):
                continue  # order changed: everything is dirty by fiat
            assert changed_vertices(dyn, before) <= dirty


class TestAccessorsAndAdoption:
    def test_freeze_and_distance_many_passthroughs(self):
        g = gnm_random_graph(8, 12, num_qualities=3, seed=11)
        dyn = DynamicWCIndex(g.copy())
        dyn.insert_edge(0, 7, 2.0)
        queries = [
            (s, t, w)
            for s in range(8)
            for t in range(8)
            for w in (0.5, 1.5, 2.5)
        ]
        expected = [dyn.distance(s, t, w) for s, t, w in queries]
        assert dyn.distance_many(queries) == expected
        assert dyn.freeze().distance_many(queries) == expected
        assert dyn.num_vertices == 8
        assert dyn.entry_count() == dyn.index.entry_count()

    def test_adopts_an_existing_index(self):
        g = gnm_random_graph(8, 12, num_qualities=3, seed=13)
        built = DynamicWCIndex(g.copy())
        adopted = DynamicWCIndex(g.copy(), index=built.freeze().thaw())
        assert adopted.index.order == built.index.order
        adopted.insert_edge(0, 7, 2.0)
        assert_matches_oracle(adopted, "adopted")

    def test_adoption_rejects_vertex_mismatch(self):
        g = gnm_random_graph(8, 12, num_qualities=3, seed=13)
        built = DynamicWCIndex(g.copy())
        with pytest.raises(ValueError, match="vertices"):
            DynamicWCIndex(Graph(9), index=built.index)

    def test_rebuild_keeps_parent_tracking(self):
        # Regression: the rebuild path used the builder's default
        # track_parents=False, silently dropping the parent columns of
        # an adopted parent-tracking index on the first delete.
        from repro.core import build_wc_index_plus

        g = gnm_random_graph(8, 14, num_qualities=3, seed=19)
        index = build_wc_index_plus(g.copy(), track_parents=True)
        dyn = DynamicWCIndex(g.copy(), index=index)
        u, v, _ = next(iter(dyn.graph.edges()))
        dyn.delete_edge(u, v)
        assert dyn.index.tracks_parents
        dyn.rebuild()
        assert dyn.index.tracks_parents
        assert_matches_oracle(dyn, "tracking rebuild")

    def test_delete_edges_validates_before_mutating(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        dyn = DynamicWCIndex(g)
        with pytest.raises(KeyError):
            dyn.delete_edges([(0, 1), (0, 3)])  # (0, 3) missing
        assert dyn.graph.has_edge(0, 1)  # nothing was removed
        assert_matches_oracle(dyn, "atomic batch delete")
        with pytest.raises(KeyError):
            dyn.delete_edges([(0, 1), (1, 0)])  # duplicate edge
        assert dyn.graph.has_edge(0, 1)


class TestIsolatingDeleteOrdering:
    def test_isolating_delete_recomputes_the_hybrid_order(self):
        # Regression: the rebuild-on-delete path used to reuse the
        # construction-time order even when the deletion stripped a
        # vertex of its last edge — ranking the now-isolated vertex by
        # its stale degree.  The order must be recomputed from the
        # current degrees (and the index stays oracle-correct).
        from repro.core.ordering import resolve_order

        g = gnm_random_graph(8, 10, num_qualities=3, seed=1)
        dyn = DynamicWCIndex(g.copy())
        assert dyn.graph.degree(2) == 1 and dyn.graph.has_edge(1, 2)
        dyn.delete_edge(1, 2)
        assert dyn._ordering == resolve_order(dyn.graph, "hybrid")
        assert dyn.index.order == dyn._ordering
        assert_matches_oracle(dyn, "isolating delete")

    def test_non_isolating_delete_reuses_the_order(self):
        g = gnm_random_graph(10, 20, num_qualities=3, seed=7)
        dyn = DynamicWCIndex(g.copy())
        order_before = list(dyn._ordering)
        for u, v, _ in list(dyn.graph.edges()):
            if dyn.graph.degree(u) > 1 and dyn.graph.degree(v) > 1:
                dyn.delete_edge(u, v)
                break
        assert dyn._ordering == order_before
        assert_matches_oracle(dyn, "non-isolating delete")

    def test_remove_edge_alias(self):
        dyn = DynamicWCIndex(path_graph(4))
        dirty = dyn.remove_edge(1, 2)
        assert dyn.distance(0, 3, 1.0) == INF
        assert isinstance(dirty, set)

    def test_batch_delete_reports_dirty(self):
        g = Graph(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
                (0, 2, 1.0),
            ],
        )
        dyn = DynamicWCIndex(g)
        before = snapshot_labels(dyn)
        dirty = dyn.delete_edges([(0, 1), (0, 2)])
        if dirty != set(range(5)):
            assert changed_vertices(dyn, before) <= dirty
        assert_matches_oracle(dyn, "batch delete dirty")
