"""Tests for query workload generation."""

import pytest

from repro.baselines.online import ConstrainedBFS
from repro.graph.generators import gnm_random_graph, path_graph
from repro.graph.graph import Graph
from repro.workloads.queries import (
    all_pairs_queries,
    connected_random_queries,
    random_queries,
)


class TestRandomQueries:
    def test_count_and_determinism(self):
        g = gnm_random_graph(20, 40, seed=1)
        a = random_queries(g, 50, seed=7)
        b = random_queries(g, 50, seed=7)
        assert len(a) == 50
        assert a.queries == b.queries

    def test_different_seeds_differ(self):
        g = gnm_random_graph(20, 40, seed=1)
        assert random_queries(g, 50, seed=1).queries != random_queries(
            g, 50, seed=2
        ).queries

    def test_constraints_from_graph_qualities(self):
        g = gnm_random_graph(15, 30, num_qualities=3, seed=2)
        workload = random_queries(g, 100, seed=0)
        used = {w for _, _, w in workload}
        assert used <= set(g.distinct_qualities())

    def test_custom_constraint_pool(self):
        g = path_graph(5)
        workload = random_queries(g, 30, seed=0, constraints=[7.0, 9.0])
        assert {w for _, _, w in workload} <= {7.0, 9.0}

    def test_vertices_in_range(self):
        g = gnm_random_graph(10, 20, seed=3)
        for s, t, _ in random_queries(g, 200, seed=1):
            assert 0 <= s < 10 and 0 <= t < 10

    def test_empty_graph(self):
        assert len(random_queries(Graph(0), 10)) == 0

    def test_edgeless_graph_uses_default_pool(self):
        workload = random_queries(Graph(5), 10, seed=0)
        assert {w for _, _, w in workload} == {1.0}

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            random_queries(path_graph(3), -1)

    def test_iteration(self):
        g = path_graph(4)
        workload = random_queries(g, 5, seed=0, name="probe")
        assert workload.name == "probe"
        assert len(list(workload)) == 5


class TestConnectedQueries:
    def test_all_pairs_connected(self):
        g = gnm_random_graph(12, 30, num_qualities=2, seed=5)
        workload = connected_random_queries(g, 20, seed=1)
        oracle = ConstrainedBFS(g)
        for s, t, w in workload:
            assert oracle.distance(s, t, w) != float("inf")

    def test_gives_up_gracefully_when_impossible(self):
        g = Graph(4)  # no edges: only s == t pairs connect
        workload = connected_random_queries(g, 5, seed=0, max_attempts_factor=10)
        for s, t, _ in workload:
            assert s == t


class TestAllPairs:
    def test_cartesian_product(self):
        g = path_graph(3, [1.0, 2.0])
        workload = all_pairs_queries(g)
        assert len(workload) == 3 * 3 * 2

    def test_custom_constraints(self):
        g = path_graph(2)
        workload = all_pairs_queries(g, constraints=[5.0])
        assert len(workload) == 4
        assert all(w == 5.0 for _, _, w in workload)
