"""Tests for the synthetic dataset suite."""

import pytest

from repro.workloads import datasets as ds


class TestRegistry:
    def test_all_names_present(self):
        names = ds.dataset_names()
        for expected in ("NY", "BAY", "COL", "FLA", "CAL", "EST", "WST", "CTR"):
            assert expected in names
        for expected in ("MV-10", "EU", "ES", "MV-25", "FR", "UK", "SO-Y"):
            assert expected in names

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            ds.get_spec("ATLANTIS")

    def test_road_size_ladder_matches_paper(self):
        # Table III order: NY < BAY < COL < FLA < CAL < EST < WST < CTR.
        sizes = [spec.base_vertices for spec in ds.ROAD_SUITE]
        assert sizes == sorted(sizes)

    def test_social_w_values_match_paper(self):
        by_name = {spec.name: spec for spec in ds.SOCIAL_SUITE}
        assert by_name["MV-10"].num_qualities == 5
        assert by_name["MV-25"].num_qualities == 5
        assert by_name["EU"].num_qualities == 3
        assert by_name["SO-Y"].num_qualities == 9


class TestBuild:
    def test_deterministic(self):
        assert ds.load("NY", scale=0.5) == ds.load("NY", scale=0.5)

    def test_scale_changes_size(self):
        small = ds.load("NY", scale=0.5)
        large = ds.load("NY", scale=2.0)
        assert large.num_vertices > small.num_vertices

    def test_num_qualities_override(self):
        g = ds.load("COL", scale=0.5, num_qualities=20)
        assert g.num_distinct_qualities() <= 20
        assert g.num_distinct_qualities() > 5

    def test_road_graphs_are_sparse(self):
        g = ds.load("FLA", scale=0.5)
        assert 2.0 * g.num_edges / g.num_vertices < 5.0

    def test_social_graphs_are_denser(self):
        g = ds.load("MV-10", scale=1.0)
        road = ds.load("NY", scale=1.0)
        assert (2.0 * g.num_edges / g.num_vertices) > (
            2.0 * road.num_edges / road.num_vertices
        )

    def test_movielens_uses_rating_qualities(self):
        g = ds.load("MV-10", scale=1.0)
        assert set(g.distinct_qualities()) <= {1.0, 2.0, 3.0, 4.0, 5.0}

    def test_suites(self):
        road = ds.road_suite(scale=0.3, limit=3)
        assert list(road) == ["NY", "BAY", "COL"]
        social = ds.social_suite(scale=0.3, limit=2)
        assert list(social) == ["MV-10", "EU"]


class TestScaleEnv:
    def test_default_scale_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert ds.default_scale() == 2.5

    def test_default_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ds.default_scale() == 1.0

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        with pytest.raises(ValueError):
            ds.default_scale()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            ds.default_scale()

    def test_minimum_size_floor(self):
        g = ds.get_spec("NY").build(scale=0.0001)
        assert g.num_vertices >= 16


class TestExtensionDerivatives:
    def test_load_directed_is_deterministic(self):
        a = ds.load_directed("NY", scale=0.5)
        b = ds.load_directed("NY", scale=0.5)
        assert sorted(a.edges()) == sorted(b.edges())
        assert a.num_vertices == ds.load("NY", scale=0.5).num_vertices

    def test_load_weighted_keeps_qualities(self):
        base = ds.load("NY", scale=0.5)
        weighted = ds.load_weighted("NY", scale=0.5)
        assert weighted.num_edges == base.num_edges
        for u, v, _, quality in weighted.edges():
            assert base.quality(u, v) == quality

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            ds.load_directed("NOPE")
        with pytest.raises(ValueError, match="unknown dataset"):
            ds.load_weighted("NOPE")
