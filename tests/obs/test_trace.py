"""Tests for spans, traces, the ring buffer, the slow log, sampling."""

import pytest

from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    SPAN_NAMES,
    SlowQueryLog,
    Trace,
    TraceBuffer,
    format_trace,
    new_trace_id,
)
from repro.serve import protocol


class TestTraceIds:
    def test_non_zero_and_distinct(self):
        ids = {new_trace_id() for _ in range(1000)}
        assert 0 not in ids
        assert len(ids) == 1000

    def test_fit_the_wire_field(self):
        for _ in range(100):
            assert 0 < new_trace_id() < (1 << 64)


class TestTrace:
    def test_spans_are_relative_to_trace_start(self):
        trace = Trace(1, 7, 3, start_monotonic=100.0)
        trace.add_span("queue-wait", 100.0, 100.5)
        trace.add_span("kernel", 100.5, 101.0)
        trace.finish(101.25)
        payload = trace.to_dict()
        assert payload["total_us"] == pytest.approx(1.25e6)
        starts = {s["name"]: s["start_us"] for s in payload["spans"]}
        assert starts["queue-wait"] == pytest.approx(0.0)
        assert starts["kernel"] == pytest.approx(0.5e6)

    def test_span_sum_counts_top_level_only(self):
        trace = Trace(1, 0, 1, 0.0)
        trace.add_span("kernel", 0.0, 1.0)
        trace.add_span("pool-dispatch", 0.1, 0.9, parent="kernel")
        trace.finish(1.0)
        assert trace.span_sum_s(["kernel", "pool-dispatch"]) == pytest.approx(1.0)

    def test_clock_skew_clamps_to_zero(self):
        trace = Trace(1, 0, 1, 10.0)
        span = trace.add_span("serialize", 9.0, 8.0)
        assert span.start_s == 0.0
        assert span.duration_s == 0.0

    def test_roundtrips_through_dict(self):
        trace = Trace(0xABC, 4, 2, 0.0)
        trace.add_span("kernel", 0.0, 0.002, batch_queries=8)
        trace.meta["cache_hit"] = False
        trace.finish(0.003)
        back = Trace.from_dict(trace.to_dict())
        assert back.trace_id == 0xABC
        assert back.request_id == 4
        assert back.meta == {"cache_hit": False}
        assert back.spans[0].name == "kernel"
        assert back.spans[0].meta == {"batch_queries": 8}
        assert back.total_s == pytest.approx(0.003)


class TestTraceBuffer:
    def test_ring_evicts_oldest(self):
        ring = TraceBuffer(capacity=3)
        for i in range(5):
            ring.push(Trace(i + 1, 0, 1, 0.0))
        assert len(ring) == 3
        assert [t.trace_id for t in ring.recent(10)] == [3, 4, 5]

    def test_find_by_trace_id(self):
        ring = TraceBuffer()
        ring.push(Trace(42, 0, 1, 0.0))
        assert ring.find(42).trace_id == 42
        assert ring.find(99) is None


class TestSlowQueryLog:
    def _trace(self, total_s):
        trace = Trace(1, 0, 1, 0.0)
        trace.finish(total_s)
        return trace

    def test_fast_traces_skipped(self):
        log = SlowQueryLog(threshold_s=0.050)
        assert log.offer(self._trace(0.001)) is False
        assert log.recorded == 0

    def test_slow_traces_recorded_and_sunk(self):
        seen = []
        log = SlowQueryLog(threshold_s=0.050, sink=seen.append)
        assert log.offer(self._trace(0.100)) is True
        assert log.recorded == 1
        assert seen[0]["total_us"] == pytest.approx(100_000)

    def test_broken_sink_does_not_fail_the_offer(self):
        def sink(payload):
            raise OSError("disk full")

        log = SlowQueryLog(threshold_s=0.001, sink=sink)
        assert log.offer(self._trace(1.0)) is True


class TestTelemetrySampling:
    def test_deterministic_one_in_n(self):
        telemetry = Telemetry(sample_every=4)
        decisions = [telemetry.should_sample() for _ in range(16)]
        assert decisions.count(True) == 4

    def test_flag_forces_sampling(self):
        telemetry = Telemetry(sample_every=0)
        assert telemetry.should_sample(protocol.FLAG_SAMPLE) is True
        assert telemetry.should_sample(0) is False

    def test_flag_value_matches_the_wire(self):
        # obs must not import serve, so the flag is defined twice; the
        # two constants must agree or force-sampling silently breaks.
        from repro.obs.telemetry import FLAG_SAMPLE as OBS_FLAG

        assert OBS_FLAG == protocol.FLAG_SAMPLE

    def test_off_bundle_traces_nothing(self):
        telemetry = Telemetry.off()
        assert telemetry.tracing_enabled is False
        assert telemetry.slow_log is None
        assert all(not telemetry.should_sample() for _ in range(100))

    def test_finish_trace_lands_in_ring_and_counter(self):
        telemetry = Telemetry(sample_every=1)
        trace = telemetry.begin_trace(0, 3, 2, 0.0)
        assert trace.trace_id != 0  # minted server-side for v1 peers
        telemetry.finish_trace(trace, 0.010)
        assert len(telemetry.traces) == 1
        assert telemetry.summary()["traces_sampled"] == 1

    def test_slow_unsampled_request_gets_a_summary_row(self):
        telemetry = Telemetry(sample_every=0, slow_ms=10.0)
        telemetry.observe_unsampled(9, 4, total_s=0.5, queue_wait_s=0.2)
        rows = telemetry.slow_log.recent()
        assert len(rows) == 1
        assert rows[0]["meta"]["sampled"] is False
        assert rows[0]["spans"][0]["name"] == "queue-wait"
        assert telemetry.summary()["slow_queries"] == 1

    def test_fast_unsampled_request_is_ignored(self):
        telemetry = Telemetry(sample_every=0, slow_ms=10.0)
        telemetry.observe_unsampled(9, 4, total_s=0.001)
        assert telemetry.slow_log.recent() == []


class TestFormatTrace:
    def test_renders_the_span_tree(self):
        trace = Trace(0x10, 1, 2, 0.0)
        trace.add_span("queue-wait", 0.0, 0.001)
        trace.add_span("kernel", 0.001, 0.004, batch_queries=2)
        trace.add_span("pool-dispatch", 0.002, 0.003, parent="kernel")
        trace.finish(0.005)
        text = format_trace(trace.to_dict())
        assert "trace 0x10" in text
        assert "queue-wait" in text
        assert "#" in text  # the proportional bar
        kernel_at = text.index("kernel")
        child_at = text.index("pool-dispatch")
        assert child_at > kernel_at  # child renders under its parent

    def test_span_glossary_is_stable(self):
        assert SPAN_NAMES == (
            "queue-wait",
            "batch-coalesce",
            "kernel",
            "cache-lookup",
            "pool-dispatch",
            "serialize",
        )
