"""Tests for the metrics registry primitives and exposition."""

import threading

import pytest

from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    Counter,
    MetricFamily,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        c = registry.counter("t_total", "help")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        c = Counter("t_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        registry = MetricsRegistry()
        c = registry.counter("t_total", "help", labelnames=("shard",))
        c.labels(shard=0).inc(2)
        c.labels(shard=1).inc(3)
        snap = registry.snapshot()
        assert snap['t_total{shard="0"}'] == 2
        assert snap['t_total{shard="1"}'] == 3

    def test_labeled_family_refuses_bare_inc(self):
        registry = MetricsRegistry()
        c = registry.counter("t_total", "help", labelnames=("shard",))
        with pytest.raises(ValueError, match="labels"):
            c.inc()

    def test_concurrent_incs_do_not_drop(self):
        c = Counter("t_total")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_moves_both_ways(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.inc(5)
        g.dec(2)
        assert g.value == 3
        g.set(0)
        assert g.value == 0

    def test_set_function_reads_at_scrape(self):
        registry = MetricsRegistry()
        g = registry.gauge("epoch")
        state = {"epoch": 7}
        g.set_function(lambda: state["epoch"])
        assert registry.snapshot()["epoch"] == 7
        state["epoch"] = 9
        assert registry.snapshot()["epoch"] == 9


class TestHistogram:
    def test_cumulative_buckets(self):
        registry = MetricsRegistry()
        h = registry.histogram("size", buckets=(1, 10, 100))
        for v in (1, 5, 50, 500):
            h.observe(v)
        snap = registry.snapshot()
        assert snap['size_bucket{le="1.0"}'] == 1
        assert snap['size_bucket{le="10.0"}'] == 2
        assert snap['size_bucket{le="100.0"}'] == 3
        assert snap['size_bucket{le="+Inf"}'] == 4
        assert snap["size_count"] == 4
        assert snap["size_sum"] == 556

    def test_batch_size_buckets_cover_singletons(self):
        registry = MetricsRegistry()
        h = registry.histogram("b", buckets=BATCH_SIZE_BUCKETS)
        h.observe(1)
        assert registry.snapshot()['b_bucket{le="1.0"}'] == 1

    def test_empty_bucket_list_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="bucket"):
            registry.histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        b = registry.counter("x_total")
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labelnames=("b",))

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")

    def test_collector_families_appear_in_both_expositions(self):
        registry = MetricsRegistry()

        def collect():
            family = MetricFamily("ext_total", "counter", "external")
            family.add_sample("", {}, 42)
            return [family]

        registry.register_collector(collect)
        assert registry.snapshot()["ext_total"] == 42
        assert "ext_total 42" in registry.render_prometheus()

    def test_broken_collector_does_not_kill_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("ok_total").inc()

        def broken():
            raise RuntimeError("component torn down")

        registry.register_collector(broken)
        assert registry.snapshot()["ok_total"] == 1


class TestPrometheusRendering:
    def test_exposition_shape(self):
        registry = MetricsRegistry()
        registry.counter("q_total", "Queries").inc(3)
        text = registry.render_prometheus()
        assert "# HELP q_total Queries" in text
        assert "# TYPE q_total counter" in text
        assert "q_total 3" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        c = registry.counter("e_total", labelnames=("path",))
        c.labels(path='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_non_finite_values_render_prometheus_style(self):
        registry = MetricsRegistry()
        g = registry.gauge("weird")
        g.set(float("inf"))
        assert "weird +Inf" in registry.render_prometheus()
