"""Tests for the pure dashboard renderer behind ``repro top``."""

from repro.obs.top import REQUIRED_METRICS, render_dashboard


def _report(**overrides):
    report = {
        "server": {"address": ["127.0.0.1", 7071]},
        "stats": {
            "queries": {"answered": 120, "shed": 4, "failed": 0},
            "latency": {
                "count": 120,
                "p50_ms": 0.4,
                "p95_ms": 1.2,
                "p99_ms": 2.5,
            },
            "queue_depth": 3,
            "connections": 2,
        },
        "metrics": {
            "repro_queries_answered_total": 120,
            "repro_queries_shed_total": 4,
        },
        "telemetry": {
            "tracing": True,
            "sample_every": 64,
            "slow_ms": 50.0,
            "traces_sampled": 2,
            "slow_queries": 1,
        },
    }
    report.update(overrides)
    return report


class TestRenderDashboard:
    def test_header_and_core_lines(self):
        text = render_dashboard(_report())
        assert "repro top — 127.0.0.1:7071" in text
        assert "answered" in text and "120" in text
        assert "p99    2.500" in text
        assert "tracing on" in text

    def test_qps_derived_from_counter_deltas(self):
        prev = _report()
        now = _report()
        now["metrics"] = {
            "repro_queries_answered_total": 220,
            "repro_queries_shed_total": 4,
        }
        text = render_dashboard(now, prev, elapsed_s=2.0)
        assert "qps         50" in text
        # No previous scrape: rate is unknowable, not zero.
        assert "qps         --" in render_dashboard(now)

    def test_empty_window_renders_sentinels_not_a_crash(self):
        # Over the wire the sanitizer carries NaN as the string "nan".
        report = _report()
        report["stats"]["latency"] = {
            "count": 0,
            "p50_ms": "nan",
            "p95_ms": "nan",
            "p99_ms": "nan",
        }
        text = render_dashboard(report)
        assert "p99       --" in text

    def test_cache_and_worker_lines_appear_when_collected(self):
        report = _report()
        report["metrics"].update(
            {
                "repro_cache_hits_total": 75,
                "repro_cache_misses_total": 25,
                "repro_cache_entries": 10,
                'repro_pool_workers{state="alive"}': 3,
                'repro_pool_workers{state="total"}': 4,
            }
        )
        text = render_dashboard(report)
        assert "hit rate   75.0%" in text
        assert "workers 3/4 alive" in text

    def test_uncollected_sections_are_omitted(self):
        text = render_dashboard(_report())
        assert "cache" not in text
        assert "workers" not in text

    def test_slow_queries_tail_renders(self):
        report = _report(
            slow_queries=[
                {"trace_id": 0xAB, "total_us": 61_000.0, "queries": 8}
            ]
        )
        text = render_dashboard(report)
        assert "recent slow queries" in text
        assert "trace 0xab" in text
        assert "61.000 ms" in text

    def test_required_metrics_is_the_ci_contract(self):
        assert "repro_queries_answered_total" in REQUIRED_METRICS
        assert len(set(REQUIRED_METRICS)) == len(REQUIRED_METRICS)
        for name in REQUIRED_METRICS:
            assert name.startswith("repro_")
