"""Tests for the periodic JSONL metrics exporter and the collector
bindings that expose serving components at scrape time."""

import json

from repro.obs.export import JsonlExporter, bind_cache
from repro.obs.metrics import MetricsRegistry


class TestJsonlExporter:
    def test_stop_flushes_a_final_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("q_total").inc(5)
        path = tmp_path / "metrics.jsonl"
        exporter = JsonlExporter(registry, path, interval_s=3600.0)
        exporter.start()
        exporter.stop()
        lines = path.read_text().splitlines()
        assert lines
        row = json.loads(lines[-1])
        assert row["metrics"]["q_total"] == 5
        assert row["ts"] > 0

    def test_lines_accumulate_across_runs(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("q_total")
        path = tmp_path / "metrics.jsonl"
        for value in (1, 2):
            counter.inc()
            exporter = JsonlExporter(registry, path, interval_s=3600.0)
            exporter.start()
            exporter.stop()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        totals = [row["metrics"]["q_total"] for row in rows]
        assert totals[-1] == 2
        assert totals == sorted(totals)  # append-only, monotonic counter


class TestCollectorBindings:
    def test_bound_cache_reports_at_scrape_time(self):
        class FakeCache:
            def snapshot(self):
                return {
                    "hits": 7,
                    "misses": 3,
                    "evictions": 1,
                    "invalidations": 0,
                    "invalidated_entries": 0,
                    "flushes": 0,
                    "entries": 4,
                    "capacity": 16,
                    "generation": 2,
                    "suspended": 0,
                }

        registry = MetricsRegistry()
        bind_cache(registry, FakeCache())
        snap = registry.snapshot()
        assert snap["repro_cache_hits_total"] == 7
        assert snap["repro_cache_misses_total"] == 3
        assert snap["repro_cache_entries"] == 4

    def test_torn_down_component_does_not_kill_the_scrape(self):
        class Broken:
            def snapshot(self):
                raise RuntimeError("cache detached")

        registry = MetricsRegistry()
        registry.counter("ok_total").inc()
        bind_cache(registry, Broken())
        assert registry.snapshot()["ok_total"] == 1
