"""Tests for the journaled live-index wrappers (all three families)."""

import pytest

from tests.helpers import thresholds_for

from repro.baselines.online import ConstrainedBFS, DirectedConstrainedBFS
from repro.core import constrained_dijkstra
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.live import (
    LiveDirectedWCIndex,
    LiveWCIndex,
    LiveWeightedWCIndex,
    live_index,
)

INF = float("inf")


def all_queries(graph):
    return [
        (s, t, w)
        for s in graph.vertices()
        for t in graph.vertices()
        for w in thresholds_for(graph)
    ]


class TestLiveWCIndex:
    def test_mutations_journal_and_answer_like_the_oracle(self):
        graph = gnm_random_graph(10, 14, num_qualities=3, seed=2)
        live = LiveWCIndex(graph.copy())
        live.insert_edge(0, 9, 2.0)
        edge = next(iter(live.graph.edges()))
        live.delete_edge(edge[0], edge[1])
        edge = next(iter(live.graph.edges()))
        live.change_quality(edge[0], edge[1], 2.5)
        assert len(live.journal) == 3
        oracle = ConstrainedBFS(live.graph)
        for s, t, w in all_queries(live.graph):
            assert live.distance(s, t, w) == oracle.distance(s, t, w)

    def test_dirty_sets_cover_label_changes(self):
        graph = Graph(4, [(0, 1, 2.0), (2, 3, 2.0)])
        live = LiveWCIndex(graph)
        before = {
            v: tuple(map(tuple, live.index.label_lists(v))) for v in range(4)
        }
        op = live.insert_edge(1, 2, 3.0)
        changed = {
            v
            for v in range(4)
            if tuple(map(tuple, live.index.label_lists(v))) != before[v]
        }
        assert set(op.dirty) == changed == live.journal.dirty_vertices()

    def test_dominated_insert_is_a_recorded_noop(self):
        live = LiveWCIndex(Graph(2, [(0, 1, 5.0)]))
        op = live.insert_edge(0, 1, 1.0)
        assert op.dirty == frozenset()
        assert len(live.journal) == 1
        assert live.graph.quality(0, 1) == 5.0

    def test_length_rejected(self):
        live = LiveWCIndex(Graph(2, [(0, 1, 1.0)]))
        with pytest.raises(ValueError, match="weighted"):
            live.insert_edge(0, 1, 2.0, 3.0)

    def test_freeze_and_batch_passthrough(self):
        graph = gnm_random_graph(8, 10, num_qualities=3, seed=4)
        live = LiveWCIndex(graph.copy())
        live.insert_edge(0, 7, 2.0)
        queries = all_queries(live.graph)
        assert live.freeze().distance_many(queries) == live.distance_many(
            queries
        )

    def test_adopts_an_existing_index(self):
        graph = gnm_random_graph(8, 12, num_qualities=3, seed=6)
        built = LiveWCIndex(graph.copy())
        adopted = LiveWCIndex(graph.copy(), index=built.freeze().thaw())
        queries = all_queries(graph)
        assert adopted.distance_many(queries) == built.distance_many(queries)


class TestLiveDirectedWCIndex:
    def test_mutations_match_the_directed_oracle(self):
        graph = DiGraph(5, [(0, 1, 2.0), (1, 2, 2.0), (3, 4, 1.0)])
        live = LiveDirectedWCIndex(graph)
        assert live.distance(0, 4, 1.0) == INF
        live.insert_edge(2, 3, 3.0)
        live.delete_edge(0, 1)
        live.change_quality(1, 2, 1.0)
        oracle = DirectedConstrainedBFS(live.graph)
        for s in range(5):
            for t in range(5):
                for w in (0.5, 1.5, 2.5, 3.5):
                    assert live.distance(s, t, w) == oracle.distance(s, t, w)

    def test_noop_mutations_skip_the_rebuild(self):
        live = LiveDirectedWCIndex(DiGraph(3, [(0, 1, 3.0), (1, 2, 2.0)]))
        index_before = live.index
        assert live.insert_edge(0, 1, 2.0).dirty == frozenset()
        assert live.change_quality(1, 2, 2.0).dirty == frozenset()
        assert live.index is index_before  # no rebuild happened

    def test_dirty_reported_by_label_diff(self):
        live = LiveDirectedWCIndex(DiGraph(3, [(0, 1, 2.0)]))
        op = live.insert_edge(1, 2, 2.0)
        assert 2 in op.dirty

    def test_invalid_quality_change_leaves_the_arc_intact(self):
        live = LiveDirectedWCIndex(DiGraph(2, [(0, 1, 3.0)]))
        with pytest.raises(ValueError, match="quality"):
            live.change_quality(0, 1, -1.0)
        assert live.graph.quality(0, 1) == 3.0


class TestLiveWeightedWCIndex:
    def test_mutations_match_the_weighted_oracle(self):
        graph = WeightedGraph(
            4, [(0, 1, 2.0, 2.0), (1, 2, 1.0, 3.0), (2, 3, 4.0, 1.0)]
        )
        live = LiveWeightedWCIndex(graph)
        live.insert_edge(0, 3, 2.0, length=5.0)
        live.delete_edge(1, 2)
        live.change_quality(0, 1, 1.0)
        for s in range(4):
            for t in range(4):
                for w in (0.5, 1.5, 2.5, 3.5):
                    assert live.distance(s, t, w) == constrained_dijkstra(
                        live.graph, s, t, w
                    )

    def test_invalid_quality_change_leaves_the_edge_intact(self):
        # Regression: the remove-then-add staging used to delete the
        # edge before add_edge rejected the bad quality, silently
        # desyncing graph and engine.
        live = LiveWeightedWCIndex(WeightedGraph(2, [(0, 1, 2.0, 3.0)]))
        with pytest.raises(ValueError, match="quality"):
            live.change_quality(0, 1, 0.0)
        assert live.graph.edge(0, 1) == (2.0, 3.0)
        assert live.distance(0, 1, 3.0) == 2.0

    def test_change_quality_keeps_the_length(self):
        live = LiveWeightedWCIndex(WeightedGraph(2, [(0, 1, 7.0, 2.0)]))
        live.change_quality(0, 1, 3.0)
        assert live.graph.edge(0, 1) == (7.0, 3.0)

    def test_default_length_is_one(self):
        live = LiveWeightedWCIndex(WeightedGraph(2))
        live.insert_edge(0, 1, 2.0)
        assert live.graph.edge(0, 1) == (1.0, 2.0)

    def test_dominated_insert_skips_the_rebuild(self):
        live = LiveWeightedWCIndex(WeightedGraph(2, [(0, 1, 1.0, 5.0)]))
        index_before = live.index
        assert live.insert_edge(0, 1, 1.0, length=9.0).dirty == frozenset()
        assert live.index is index_before


class TestBatchCoalescing:
    def test_rebuild_families_pay_one_rebuild_per_batch(self, monkeypatch):
        live = LiveDirectedWCIndex(
            DiGraph(5, [(0, 1, 2.0), (1, 2, 2.0), (3, 4, 1.0)])
        )
        rebuilds = []
        original = type(live)._rebuild_index

        def counting(self):
            rebuilds.append(1)
            return original(self)

        monkeypatch.setattr(type(live), "_rebuild_index", counting)
        dirty = live.apply(
            [
                ("insert", 2, 3, 3.0, None),
                ("delete", 0, 1, None, None),
                ("quality", 1, 2, 1.0, None),
            ]
        )
        assert len(rebuilds) == 1
        assert len(live.journal) == 3
        # Batch-granular dirt rides on the final op.
        assert live.journal.ops[-1].dirty == frozenset(dirty)
        assert all(op.dirty == frozenset() for op in live.journal.ops[:-1])
        oracle = DirectedConstrainedBFS(live.graph)
        for s in range(5):
            for t in range(5):
                for w in (0.5, 1.5, 2.5, 3.5):
                    assert live.distance(s, t, w) == oracle.distance(s, t, w)

    def test_failed_op_keeps_engine_and_journal_consistent(self):
        live = LiveDirectedWCIndex(DiGraph(3, [(0, 1, 2.0)]))
        with pytest.raises(KeyError, match="no such edge"):
            live.apply(
                [
                    ("insert", 1, 2, 2.0, None),
                    ("delete", 2, 0, None, None),  # missing edge
                ]
            )
        # The staged insert was rebuilt in and journaled before the
        # error propagated.
        assert len(live.journal) == 1
        assert live.graph.has_edge(1, 2)
        oracle = DirectedConstrainedBFS(live.graph)
        assert live.distance(0, 2, 1.0) == oracle.distance(0, 2, 1.0) == 2.0

    def test_undirected_batch_names_the_missing_edge(self):
        live = LiveWCIndex(Graph(3, [(0, 1, 1.0)]))
        with pytest.raises(KeyError, match="no such edge for mutation"):
            live.apply([("delete", 1, 2, None, None)])

    def test_undirected_delete_run_coalesces_into_one_rebuild(
        self, monkeypatch
    ):
        from repro.core.construction import WCIndexBuilder

        graph = Graph(
            5,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
                (0, 2, 2.0),
            ],
        )
        live = LiveWCIndex(graph)
        builds = []
        original = WCIndexBuilder.build

        def counting(self):
            builds.append(1)
            return original(self)

        monkeypatch.setattr(WCIndexBuilder, "build", counting)
        dirty = live.apply(
            [
                ("delete", 0, 1, None, None),
                ("delete", 0, 2, None, None),
                ("insert", 0, 3, 2.0, None),
            ]
        )
        assert len(builds) == 1  # one rebuild for the two-delete run
        assert len(live.journal) == 3
        assert live.journal.ops[0].dirty == frozenset()
        assert live.journal.ops[1].dirty  # run dirt on its last op
        oracle = ConstrainedBFS(live.graph)
        for s, t, w in all_queries(live.graph):
            assert live.distance(s, t, w) == oracle.distance(s, t, w)
        assert isinstance(dirty, set)

    def test_undirected_delete_run_validates_before_mutating(self):
        live = LiveWCIndex(Graph(3, [(0, 1, 1.0), (1, 2, 1.0)]))
        with pytest.raises(KeyError, match="delete 0 2"):
            live.apply(
                [
                    ("delete", 0, 1, None, None),
                    ("delete", 0, 2, None, None),  # missing
                ]
            )
        # Nothing was deleted: the run failed validation atomically.
        assert live.graph.has_edge(0, 1)
        assert len(live.journal) == 0

    def test_duplicate_delete_in_a_run_rejected(self):
        live = LiveWCIndex(Graph(3, [(0, 1, 1.0), (1, 2, 1.0)]))
        with pytest.raises(KeyError, match="no such edge"):
            live.apply(
                [
                    ("delete", 0, 1, None, None),
                    ("delete", 1, 0, None, None),  # same edge again
                ]
            )
        assert live.graph.has_edge(0, 1)

    def test_short_mutation_tuples_accepted(self):
        live = LiveWCIndex(Graph(3, [(0, 1, 1.0)]))
        dirty = live.apply([("insert", 1, 2, 2.0)])
        assert live.graph.has_edge(1, 2)
        assert isinstance(dirty, set)


class TestLiveIndexFactory:
    def test_dispatches_on_graph_type(self):
        assert isinstance(
            live_index(Graph(2, [(0, 1, 1.0)])), LiveWCIndex
        )
        assert isinstance(
            live_index(DiGraph(2, [(0, 1, 1.0)])), LiveDirectedWCIndex
        )
        assert isinstance(
            live_index(WeightedGraph(2, [(0, 1, 1.0, 1.0)])),
            LiveWeightedWCIndex,
        )

    def test_rejects_unknown_graph_types(self):
        with pytest.raises(TypeError, match="no live index wrapper"):
            live_index(object())

    def test_vertex_count_mismatch_rejected(self):
        graph = Graph(3, [(0, 1, 1.0)])
        live = LiveWCIndex(graph.copy())
        with pytest.raises(ValueError, match="vertices"):
            live_index(Graph(4), index=live.index)
