"""Tests for the zero-downtime live publisher (epoch swaps)."""

import pytest

from repro.baselines.online import ConstrainedBFS
from repro.core import load_frozen, save_frozen
from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph
from repro.live import LivePublisher, LiveWCIndex, read_mutations
from repro.live.refreeze import image_bytes

INF = float("inf")


@pytest.fixture
def live():
    graph = gnm_random_graph(12, 18, num_qualities=3, seed=21)
    return LiveWCIndex(graph.copy())


def oracle_answers(graph, queries):
    oracle = ConstrainedBFS(graph)
    return [oracle.distance(s, t, w) for s, t, w in queries]


def dirtying_mutation(graph):
    """An insert that must change labels: a missing edge whose quality
    exceeds every existing one (new reachability at high constraints)."""
    for u in graph.vertices():
        for v in graph.vertices():
            if u < v and not graph.has_edge(u, v):
                return ("insert", u, v, 9.0, None)
    raise AssertionError("graph is complete")


class TestLivePublisher:
    def test_pool_absorbs_updates_across_the_swap(self, live):
        queries = [
            (s, t, w) for s in range(12) for t in range(0, 12, 3)
            for w in (0.5, 1.5, 2.5)
        ]
        with LivePublisher(live, workers=2) as publisher:
            assert publisher.epoch == 0
            before = publisher.query_batch(queries)
            assert before == oracle_answers(live.graph, queries)

            mutations = [
                dirtying_mutation(live.graph),
                ("delete", *next(iter(live.graph.edges()))[:2], None, None),
            ]
            report = publisher.apply(mutations)
            assert publisher.epoch == 1
            assert report.epoch == 1
            assert report.ops == 2
            assert report.published
            after = publisher.query_batch(queries)
            assert after == oracle_answers(live.graph, queries)
            assert len(publisher.journal) == 0  # journal cleared

    def test_epoch_numbered_segments(self, live):
        with LivePublisher(live, workers=1) as publisher:
            assert publisher.segment_name.endswith("g0")
            report = publisher.apply([dirtying_mutation(live.graph)])
            assert report.dirty_count
            assert publisher.segment_name.endswith("g1")
            assert report.segment_name == publisher.segment_name

    def test_noop_batch_keeps_the_epoch(self, live):
        with LivePublisher(live, workers=1) as publisher:
            # Inserting a dominated parallel edge dirties nothing.
            u, v, q = next(iter(live.graph.edges()))
            report = publisher.apply([("insert", u, v, q, None)])
            assert publisher.epoch == 0
            assert not report.published

    def test_patch_mode_keeps_the_image_canonical(self, live, tmp_path):
        path = tmp_path / "live.wcxb"
        with LivePublisher(live, workers=1, image_path=path) as publisher:
            assert path.exists()
            report = publisher.apply([dirtying_mutation(live.graph)])
            assert report.image_mode == "patch"
            assert path.read_bytes() == image_bytes(live.freeze())

    def test_delta_mode_appends_blobs(self, live, tmp_path):
        path = tmp_path / "live.wcxb"
        with LivePublisher(
            live, workers=1, image_path=path, image_mode="delta"
        ) as publisher:
            report = publisher.apply([dirtying_mutation(live.graph)])
            assert report.image_mode == "delta"
            assert report.image_bytes_written > 0
            loaded = load_frozen(path)
            assert image_bytes(loaded) == image_bytes(live.freeze())

    def test_mutation_file_round_trip(self, live, tmp_path):
        ops = tmp_path / "batch.ops"
        ops.write_text("insert 0 11 2.0\nquality 0 11 3.0\n")
        with LivePublisher(live, workers=1) as publisher:
            publisher.apply(read_mutations(ops))
            assert live.graph.quality(0, 11) == 3.0

    def test_unknown_image_mode_rejected(self, live):
        with pytest.raises(ValueError, match="image mode"):
            LivePublisher(live, image_mode="sideways")

    def test_closed_publisher_raises(self, live):
        publisher = LivePublisher(live, workers=1)
        publisher.close()
        publisher.close()  # idempotent
        assert publisher.closed
        with pytest.raises(RuntimeError, match="closed"):
            publisher.query(0, 1, 1.0)


class TestOrderChangeFallback:
    def test_isolating_delete_forces_a_full_rewrite(self, tmp_path):
        # Deleting vertex 2's last edge isolates it; the dynamic index
        # recomputes the hybrid ordering from the current degrees (a
        # different order on this graph), and the publisher must fall
        # back to a full freeze + rewrite.
        graph = gnm_random_graph(8, 10, num_qualities=3, seed=1)
        assert graph.has_edge(1, 2) and graph.degree(2) == 1
        live = LiveWCIndex(graph)
        path = tmp_path / "live.wcxb"
        with LivePublisher(live, workers=1, image_path=path) as publisher:
            old_order = list(publisher.live.index.order)
            report = publisher.apply([("delete", 1, 2, None, None)])
            assert live.index.order != old_order
            assert report.published
            assert not report.incremental
            assert report.image_mode == "rewrite"
            assert path.read_bytes() == image_bytes(live.freeze())
            assert publisher.query(1, 2, 1.0) == INF


class TestQueryServerSwap:
    def test_swap_serves_the_new_generation(self, tmp_path):
        from repro.serve import QueryServer
        from tests.serve.test_shm import segment_exists

        graph = Graph(4, [(0, 1, 2.0), (2, 3, 2.0)])
        live = LiveWCIndex(graph)
        old_engine = live.freeze()
        with QueryServer(old_engine, workers=2) as server:
            old_name = server.image_name
            assert server.query(0, 3, 1.0) == INF
            live.insert_edge(1, 2, 3.0)
            server.swap_image(live.freeze())
            assert server.query(0, 3, 1.0) == 3.0
            assert server.image_name != old_name
            assert not segment_exists(old_name)  # generation N unlinked
            assert server.num_workers == 2

    def test_swap_accepts_a_path_source(self, tmp_path):
        graph = Graph(3, [(0, 1, 1.0)])
        live = LiveWCIndex(graph)
        path = tmp_path / "next.wcxb"
        with QueryServerFactory(live) as server:
            live.insert_edge(1, 2, 1.0)
            save_frozen(live.freeze(), path)
            server.swap_image(path)
            assert server.query(0, 2, 1.0) == 2.0

    def test_swap_on_closed_server_raises(self):
        from repro.serve import QueryServer

        graph = Graph(2, [(0, 1, 1.0)])
        server = QueryServer(LiveWCIndex(graph).freeze(), workers=1)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.swap_image(None)


def QueryServerFactory(live):
    from repro.serve import QueryServer

    return QueryServer(live.freeze(), workers=1)
