"""Hypothesis: journaled update streams across all three families.

For arbitrary graphs and arbitrary insert/delete/quality sequences, the
journaled-refreeze engine (incremental splice against the pre-stream
snapshot, or the order-change fallback) must

* be **bit-identical** to freezing the updated list engine from scratch,
* answer every query identically to a **fresh build** of the final
  graph (its own ordering — label sets may differ, answers may not), and
* agree with the family's index-free **oracle** (constrained BFS /
  directed constrained BFS / constrained Dijkstra).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.online import ConstrainedBFS, DirectedConstrainedBFS
from repro.core import (
    DirectedWCIndex,
    WeightedWCIndex,
    build_wc_index_plus,
    constrained_dijkstra,
)
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.live import (
    LiveDirectedWCIndex,
    LiveWCIndex,
    LiveWeightedWCIndex,
    refreeze,
)
from repro.live.refreeze import image_bytes

CONSTRAINTS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0)


@st.composite
def graph_with_ops(draw, directed=False, weighted=False):
    """A small graph plus a raw op stream (resolved against live state)."""
    n = draw(st.integers(min_value=2, max_value=8))
    if directed:
        pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
    else:
        pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
    )
    if directed:
        graph = DiGraph(n)
    elif weighted:
        graph = WeightedGraph(n)
    else:
        graph = Graph(n)
    for u, v in chosen:
        quality = float(draw(st.integers(min_value=1, max_value=4)))
        if weighted:
            length = float(draw(st.integers(min_value=1, max_value=5)))
            graph.add_edge(u, v, length, quality)
        else:
            graph.add_edge(u, v, quality)
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "quality"]),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=1, max_value=5),
            ),
            max_size=6,
        )
    )
    return graph, ops


def apply_stream(live, ops, weighted=False):
    """Resolve raw ops against the live graph: deletes and quality
    changes need an existing edge, inserts a distinct pair."""
    for kind, u, v, quality, length in ops:
        if u == v:
            continue
        exists = live.graph.has_edge(u, v)
        if kind == "insert":
            if weighted:
                live.insert_edge(u, v, float(quality), float(length))
            else:
                live.insert_edge(u, v, float(quality))
        elif kind == "delete" and exists:
            live.delete_edge(u, v)
        elif kind == "quality" and exists:
            live.change_quality(u, v, float(quality))


def assert_stream_equivalence(live, old_frozen, fresh_engine, oracle):
    refrozen = refreeze(
        old_frozen, live.index, live.journal.dirty_vertices()
    ).engine
    assert image_bytes(refrozen) == image_bytes(live.freeze())
    n = live.num_vertices
    queries = [
        (s, t, w) for s in range(n) for t in range(n) for w in CONSTRAINTS
    ]
    answers = refrozen.distance_many(queries)
    assert answers == fresh_engine.distance_many(queries)
    for (s, t, w), answer in zip(queries, answers):
        assert answer == oracle(s, t, w), (s, t, w)


@settings(max_examples=20)
@given(graph_with_ops())
def test_undirected_update_stream(data):
    graph, ops = data
    live = LiveWCIndex(graph.copy())
    old_frozen = live.freeze()
    apply_stream(live, ops)
    fresh = build_wc_index_plus(live.graph).freeze()
    oracle = ConstrainedBFS(live.graph)
    assert_stream_equivalence(live, old_frozen, fresh, oracle.distance)


@settings(max_examples=12)
@given(graph_with_ops(directed=True))
def test_directed_update_stream(data):
    graph, ops = data
    live = LiveDirectedWCIndex(graph.copy())
    old_frozen = live.freeze()
    apply_stream(live, ops)
    fresh = DirectedWCIndex(live.graph).freeze()
    oracle = DirectedConstrainedBFS(live.graph)
    assert_stream_equivalence(live, old_frozen, fresh, oracle.distance)


@settings(max_examples=12)
@given(graph_with_ops(weighted=True))
def test_weighted_update_stream(data):
    graph, ops = data
    live = LiveWeightedWCIndex(graph.copy())
    old_frozen = live.freeze()
    apply_stream(live, ops, weighted=True)
    fresh = WeightedWCIndex(live.graph).freeze()

    def oracle(s, t, w):
        return constrained_dijkstra(live.graph, s, t, w)

    assert_stream_equivalence(live, old_frozen, fresh, oracle)
