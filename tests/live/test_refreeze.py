"""Tests for incremental refreeze, in-place patches, and delta blobs."""

import io

import pytest

from repro.core import (
    IndexFormatError,
    attach_frozen,
    describe_frozen,
    load_frozen,
    save_frozen,
)
from repro.core.frozen import splice_column, spliced_offsets
from repro.core.serialize import append_delta
from repro.graph.digraph import DiGraph
from repro.graph.generators import gnm_random_graph, oriented_copy
from repro.graph.weighted import WeightedGraph
from repro.live import (
    DeltaPatch,
    LiveDirectedWCIndex,
    LiveWCIndex,
    LiveWeightedWCIndex,
    incremental_refreeze,
    make_patch,
    refreeze,
)
from repro.live.refreeze import diff_image, image_bytes


def sample_queries(n):
    return [
        (s, t, w)
        for s in range(n)
        for t in range(n)
        for w in (0.5, 1.5, 2.5, 3.5)
    ]


def make_live_undirected(seed=3):
    graph = gnm_random_graph(12, 20, num_qualities=3, seed=seed)
    return LiveWCIndex(graph.copy())


def mutate(live):
    """A small mixed batch valid for every family."""
    graph = live.graph
    n = graph.num_vertices
    for u in range(n):
        for v in range(n):
            if u != v and not graph.has_edge(u, v):
                if isinstance(live, LiveWeightedWCIndex):
                    live.insert_edge(u, v, 2.0, length=3.0)
                else:
                    live.insert_edge(u, v, 2.0)
                return


class TestIncrementalRefreeze:
    @pytest.mark.parametrize("family", ["undirected", "directed", "weighted"])
    def test_bit_identical_to_full_freeze(self, family):
        graph = gnm_random_graph(12, 22, num_qualities=3, seed=9)
        if family == "undirected":
            live = LiveWCIndex(graph.copy())
        elif family == "directed":
            live = LiveDirectedWCIndex(oriented_copy(graph, seed=1))
        else:
            wgraph = WeightedGraph(graph.num_vertices)
            for u, v, q in graph.edges():
                wgraph.add_edge(u, v, float((u + v) % 3 + 1), q)
            live = LiveWeightedWCIndex(wgraph)
        old = live.freeze()
        mutate(live)
        edge = next(iter(live.graph.edges()))
        live.delete_edge(edge[0], edge[1])
        dirty = live.journal.dirty_vertices()
        engine = incremental_refreeze(old, live.index, dirty)
        assert image_bytes(engine) == image_bytes(live.freeze())

    def test_empty_dirty_reproduces_the_image(self):
        live = make_live_undirected()
        old = live.freeze()
        engine = incremental_refreeze(old, live.index, set())
        assert image_bytes(engine) == image_bytes(old)

    def _order_changed_live(self):
        """A live index whose order diverged from its first freeze:
        degree-changing inserts followed by a fresh-ordering rebuild."""
        live = make_live_undirected()
        old = live.freeze()
        hub = max(live.graph.vertices(), key=live.graph.degree)
        for v in live.graph.vertices():
            if v != hub and not live.graph.has_edge(hub, v):
                live.insert_edge(hub, v, 1.0)
        live.dynamic.rebuild()  # fresh hybrid ordering over new degrees
        assert live.index.order != old.order
        return live, old

    def test_order_change_raises(self):
        live, old = self._order_changed_live()
        with pytest.raises(ValueError, match="order changed"):
            incremental_refreeze(old, live.index, {0})

    def test_refreeze_falls_back_on_order_change(self):
        live, old = self._order_changed_live()
        result = refreeze(old, live.index, set(range(live.num_vertices)))
        assert image_bytes(result.engine) == image_bytes(live.freeze())
        assert not result.incremental

    def test_out_of_range_dirty_rejected(self):
        live = make_live_undirected()
        old = live.freeze()
        with pytest.raises(ValueError, match="out of range"):
            incremental_refreeze(old, live.index, {live.num_vertices})

    def test_parent_tracking_mismatch_rejected(self):
        from repro.core import build_wc_index_plus

        graph = gnm_random_graph(8, 12, num_qualities=3, seed=5)
        plain = build_wc_index_plus(graph)
        with_parents = build_wc_index_plus(graph, track_parents=True)
        with pytest.raises(ValueError, match="parent"):
            incremental_refreeze(plain.freeze(), with_parents, {0})

    def test_parent_tracking_splices(self):
        from repro.core import build_wc_index_plus
        from repro.core.dynamic import DynamicWCIndex

        graph = gnm_random_graph(10, 16, num_qualities=3, seed=8)
        index = build_wc_index_plus(graph.copy(), track_parents=True)
        old = index.freeze()
        dyn = DynamicWCIndex(graph.copy(), index=index)
        dirty = dyn.insert_edge(0, 9, 2.0)
        engine = incremental_refreeze(old, dyn.index, dirty)
        assert image_bytes(engine) == image_bytes(dyn.freeze())


class TestSplicePrimitives:
    def test_spliced_offsets(self):
        from array import array

        old = array("q", [0, 2, 5, 5, 9])
        out = spliced_offsets(old, {1: 1, 3: 6})
        assert list(out) == [0, 2, 3, 3, 9]

    def test_splice_column_swaps_entries(self):
        from array import array

        offsets = array("q", [0, 2, 4, 6])
        column = array("i", [10, 11, 20, 21, 30, 31])
        out = splice_column(offsets, column, "i", {1: [99, 98, 97]})
        assert list(out) == [10, 11, 99, 98, 97, 30, 31]

    def test_splice_column_rejects_bad_vertex(self):
        from array import array

        offsets = array("q", [0, 1])
        column = array("i", [1])
        with pytest.raises(ValueError, match="out of range"):
            splice_column(offsets, column, "i", {5: [1]})


class TestDeltaPatch:
    def test_patched_file_is_canonical(self, tmp_path):
        live = make_live_undirected()
        old = live.freeze()
        path = tmp_path / "x.wcxb"
        save_frozen(old, path)
        mutate(live)
        result = refreeze(old, live.index, live.journal.dirty_vertices())
        patch = make_patch(path, result.engine)
        patch.apply(path)
        assert path.read_bytes() == image_bytes(live.freeze())
        assert patch.new_size == path.stat().st_size

    def test_atomic_apply_leaves_no_staging_file(self, tmp_path):
        live = make_live_undirected(seed=4)
        old = live.freeze()
        path = tmp_path / "x.wcxb"
        save_frozen(old, path)
        mutate(live)
        result = refreeze(old, live.index, live.journal.dirty_vertices())
        make_patch(path, result.engine).apply(path)
        assert list(tmp_path.iterdir()) == [path]
        assert path.read_bytes() == image_bytes(live.freeze())

    def test_non_atomic_apply_matches(self, tmp_path):
        live = make_live_undirected(seed=4)
        old = live.freeze()
        path = tmp_path / "x.wcxb"
        save_frozen(old, path)
        mutate(live)
        result = refreeze(old, live.index, live.journal.dirty_vertices())
        make_patch(path, result.engine).apply(path, atomic=False)
        assert path.read_bytes() == image_bytes(live.freeze())

    def test_atomic_apply_keeps_attached_readers_on_the_old_image(
        self, tmp_path
    ):
        live = make_live_undirected(seed=4)
        old = live.freeze()
        path = tmp_path / "x.wcxb"
        save_frozen(old, path)
        attached = load_frozen(path, mode="mmap")
        try:
            old_image = image_bytes(old)
            mutate(live)
            result = refreeze(old, live.index, live.journal.dirty_vertices())
            make_patch(path, result.engine).apply(path)
            # The replace swapped the inode: the attached reader still
            # sees the intact previous generation.
            assert image_bytes(attached) == old_image
        finally:
            attached.release()

    def test_apply_refuses_a_mismatched_file(self, tmp_path):
        path = tmp_path / "x.wcxb"
        path.write_bytes(b"abc")
        patch = DeltaPatch(old_size=4, new_size=4, ranges=[(0, b"zzzz")])
        with pytest.raises(ValueError, match="bytes"):
            patch.apply(path)

    def test_diff_image_handles_growth_and_shrink(self):
        old = bytes(range(256)) * 64
        grown = old + b"tail"
        patch = diff_image(old, grown)
        rebuilt = bytearray(old)
        for offset, chunk in patch.ranges:
            rebuilt[offset:offset + len(chunk)] = chunk
        assert bytes(rebuilt[: patch.new_size]) == grown

        shrunk = old[:100]
        patch = diff_image(old, shrunk)
        assert patch.new_size == 100

    def test_diff_image_is_minimal_for_a_spot_change(self):
        old = bytes(10 * 4096)
        new = bytearray(old)
        new[20000] = 7
        patch = diff_image(old, bytes(new))
        assert patch.bytes_written <= 4096


class TestDeltaBlobs:
    def _updated(self, tmp_path):
        live = make_live_undirected(seed=13)
        old = live.freeze()
        path = tmp_path / "x.wcxb"
        save_frozen(old, path)
        mutate(live)
        return live, old, path

    def test_load_and_attach_resolve_the_chain(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        dirty1 = live.journal.dirty_vertices()
        engine1 = incremental_refreeze(old, live.index, dirty1)
        append_delta(engine1, path, sorted(dirty1))
        live.journal.clear()
        # Second batch chains a second blob.
        edge = next(iter(live.graph.edges()))
        live.change_quality(edge[0], edge[1], 0.5)
        dirty2 = live.journal.dirty_vertices()
        engine2 = incremental_refreeze(engine1, live.index, dirty2)
        appended = append_delta(engine2, path, sorted(dirty2))
        assert appended > 0

        canonical = image_bytes(live.freeze())
        assert image_bytes(load_frozen(path)) == canonical
        attached = attach_frozen(path.read_bytes())
        assert image_bytes(attached) == canonical
        # The thawing loader resolves too.
        from repro.core import load_index

        assert load_index(path).entry_count() == live.index.entry_count()

    def test_describe_reports_the_chain(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        dirty = live.journal.dirty_vertices()
        engine = incremental_refreeze(old, live.index, dirty)
        append_delta(engine, path, sorted(dirty))
        described = describe_frozen(path)
        assert len(described["deltas"]) == 1
        assert described["deltas"][0]["num_dirty"] == len(dirty)
        assert described["total_bytes"] == path.stat().st_size
        base = describe_frozen(io.BytesIO(image_bytes(old)))
        assert base["deltas"] == []

    def test_empty_dirty_appends_nothing(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        before = path.read_bytes()
        assert append_delta(old, path, []) == 0
        assert path.read_bytes() == before

    def test_variant_mismatch_rejected(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        directed = LiveDirectedWCIndex(DiGraph(2, [(0, 1, 1.0)]))
        with pytest.raises(IndexFormatError, match="directed"):
            append_delta(directed.freeze(), path, [0])

    def test_order_mismatch_rejected(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        hub = max(live.graph.vertices(), key=live.graph.degree)
        for v in live.graph.vertices():
            if v != hub and not live.graph.has_edge(hub, v):
                live.insert_edge(hub, v, 1.0)
        live.dynamic.rebuild()
        assert live.index.order != old.order
        with pytest.raises(IndexFormatError, match="order"):
            append_delta(live.freeze(), path, [0])

    def test_describe_rejects_a_zeroed_delta_table(self, tmp_path):
        # Regression: a WCXD header followed by a zeroed section table
        # used to make describe_frozen loop forever (blob extent ==
        # cursor, so the scan never advanced).
        import struct

        live, old, path = self._updated(tmp_path)
        with open(path, "ab") as out:
            size = out.tell()
            out.write(b"\x00" * (-size % 8))  # align like append_delta
            out.write(struct.pack("<4sHHq", b"WCXD", 1, 0, 1))
            out.write(b"\x00" * 256)  # zeroed table + padding
        with pytest.raises(IndexFormatError, match="delta"):
            describe_frozen(path)

    def test_torn_append_names_the_recovery_offset(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        dirty = live.journal.dirty_vertices()
        engine = incremental_refreeze(old, live.index, dirty)
        good = path.stat().st_size
        append_delta(engine, path, sorted(dirty))
        blob_at = describe_frozen(path)["deltas"][0]["offset"]
        # Simulate a crash mid-append: keep the header, lose the tail.
        with open(path, "r+b") as out:
            out.truncate(blob_at + 32)
        with pytest.raises(IndexFormatError) as excinfo:
            load_frozen(path)
        assert f"truncating the file to {good} bytes" in str(excinfo.value)
        # Following the message recovers the pre-append image.
        with open(path, "r+b") as out:
            out.truncate(good)
        assert image_bytes(load_frozen(path)) == image_bytes(old)

    def test_corrupt_blob_names_the_section(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        dirty = live.journal.dirty_vertices()
        engine = incremental_refreeze(old, live.index, dirty)
        append_delta(engine, path, sorted(dirty))
        described = describe_frozen(path)
        blob = described["deltas"][0]
        data = bytearray(path.read_bytes())
        # Flip the dirty count: the size stamps no longer line up.
        data[blob["offset"] + 8] ^= 0xFF
        with pytest.raises(IndexFormatError):
            load_frozen(io.BytesIO(bytes(data)))

    def test_trailing_garbage_after_chain_rejected(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        dirty = live.journal.dirty_vertices()
        engine = incremental_refreeze(old, live.index, dirty)
        append_delta(engine, path, sorted(dirty))
        data = path.read_bytes() + b"garbage!"
        with pytest.raises(IndexFormatError, match="trailing"):
            load_frozen(io.BytesIO(data))
        # exact=False (the shared-memory case) tolerates it.
        attach_frozen(data + b"\x00" * 64, exact=False)

    def test_shm_publish_normalizes_delta_images(self, tmp_path):
        live, old, path = self._updated(tmp_path)
        dirty = live.journal.dirty_vertices()
        engine = incremental_refreeze(old, live.index, dirty)
        append_delta(engine, path, sorted(dirty))
        from repro.serve import ShmIndexImage

        canonical = image_bytes(live.freeze())
        with ShmIndexImage(path) as image:
            assert image.size == len(canonical)  # delta chain compacted
            served = image.attach_engine()
            try:
                assert image_bytes(served) == canonical
            finally:
                served.release()
