"""Tests for the update journal and the mutation-file grammar."""

import pytest

from repro.graph.graph import Graph
from repro.live import (
    LiveWCIndex,
    MutationFormatError,
    UpdateJournal,
    format_mutation,
    parse_mutation,
    read_mutations,
)


class TestUpdateJournal:
    def test_records_ops_in_sequence(self):
        journal = UpdateJournal()
        one = journal.record("insert", 0, 1, quality=2.0, dirty=[0, 1])
        two = journal.record("delete", 1, 2, dirty=[2])
        assert [op.seq for op in journal] == [one.seq, two.seq] == [0, 1]
        assert len(journal) == 2
        assert journal.dirty_vertices() == {0, 1, 2}

    def test_clear_keeps_sequence_running(self):
        journal = UpdateJournal()
        journal.record("insert", 0, 1, quality=1.0, dirty=[0])
        journal.clear()
        assert len(journal) == 0
        assert journal.dirty_vertices() == set()
        assert not journal
        op = journal.record("delete", 0, 1)
        assert op.seq == 1  # ids stay unique across batches

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation kind"):
            UpdateJournal().record("upsert", 0, 1)

    def test_save_round_trips_through_read_mutations(self, tmp_path):
        journal = UpdateJournal()
        journal.record("insert", 0, 1, quality=2.0, dirty=[0, 1])
        journal.record("insert", 2, 3, quality=1.5, length=4.0, dirty=[2])
        journal.record("quality", 0, 1, quality=3.0)
        journal.record("delete", 0, 1, dirty=[0, 1, 4])
        path = tmp_path / "batch.ops"
        journal.save(path)
        assert read_mutations(path) == [
            op.mutation() for op in journal.ops
        ]

    def test_replay_reproduces_the_target_state(self):
        graph = Graph(4, [(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0)])
        primary = LiveWCIndex(graph.copy())
        primary.insert_edge(0, 3, 1.0)
        primary.delete_edge(1, 2)
        replica = LiveWCIndex(graph.copy())
        primary.journal.replay(replica)
        assert replica.graph == primary.graph
        queries = [
            (s, t, w)
            for s in range(4)
            for t in range(4)
            for w in (0.5, 1.5, 2.5)
        ]
        assert replica.distance_many(queries) == primary.distance_many(queries)


class TestMutationGrammar:
    @pytest.mark.parametrize(
        "line,expected",
        [
            ("insert 0 1 2.5", ("insert", 0, 1, 2.5, None)),
            ("+ 0 1 2.5", ("insert", 0, 1, 2.5, None)),
            ("insert 0 1 3.0 2.5", ("insert", 0, 1, 2.5, 3.0)),
            ("delete 4 5", ("delete", 4, 5, None, None)),
            ("- 4 5", ("delete", 4, 5, None, None)),
            ("quality 1 2 4.0", ("quality", 1, 2, 4.0, None)),
        ],
    )
    def test_parse(self, line, expected):
        assert parse_mutation(line) == expected

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "upsert 0 1 2.0",
            "insert 0 1",
            "insert 0 1 2 3 4",
            "delete 0",
            "delete 0 1 2",
            "quality 0 1",
            "insert a b 2.0",
            "insert 0 1 nope",
        ],
    )
    def test_parse_rejects_malformed(self, line):
        with pytest.raises(MutationFormatError):
            parse_mutation(line)

    def test_format_parse_round_trip(self):
        for mutation in [
            ("insert", 0, 9, 2.0, None),
            ("insert", 0, 9, 2.0, 3.5),
            ("delete", 7, 8, None, None),
            ("quality", 1, 2, 0.75, None),
        ]:
            assert parse_mutation(format_mutation(*mutation)) == mutation

    def test_read_mutations_skips_comments_and_blanks(self):
        lines = [
            "# header",
            "",
            "insert 0 1 2.0  # inline note",
            "   ",
            "delete 0 1",
        ]
        assert read_mutations(lines) == [
            ("insert", 0, 1, 2.0, None),
            ("delete", 0, 1, None, None),
        ]

    def test_read_mutations_reports_line_numbers(self):
        with pytest.raises(MutationFormatError, match="line 3"):
            read_mutations(["insert 0 1 2.0", "", "bogus 1 2"])

    def test_read_mutations_from_path(self, tmp_path):
        path = tmp_path / "ops.txt"
        path.write_text("insert 0 1 2.0\ndelete 0 1\n")
        assert len(read_mutations(path)) == 2
