"""Tests for the bench harness primitives."""

import pytest

from repro.bench.harness import (
    Cell,
    ExperimentTable,
    build_all_indexes,
    query_engines,
    time_build,
    time_queries,
)
from repro.graph.generators import gnm_random_graph, path_graph
from repro.workloads.queries import random_queries


class TestCell:
    def test_ok_cell(self):
        assert Cell(2.5).feasible
        assert str(Cell(2.5)) == "2.50"

    def test_integer_rendering(self):
        assert str(Cell(120.0)) == "120"

    def test_inf_cell(self):
        cell = Cell(None, "INF")
        assert not cell.feasible
        assert str(cell) == "INF"

    def test_small_value_rendering(self):
        assert str(Cell(0.00123)) == "0.00123"


class TestExperimentTable:
    def test_set_get(self):
        table = ExperimentTable("x", "t", "s", ["a", "b"])
        table.set("row", "a", Cell(1.0))
        assert table.get("row", "a").value == 1.0
        assert table.feasible_value("row", "a") == 1.0

    def test_unknown_column_rejected(self):
        table = ExperimentTable("x", "t", "s", ["a"])
        with pytest.raises(KeyError):
            table.set("row", "zzz", Cell(1.0))

    def test_feasible_value_of_inf_is_none(self):
        table = ExperimentTable("x", "t", "s", ["a"])
        table.set("row", "a", Cell(None, "INF"))
        assert table.feasible_value("row", "a") is None
        assert table.feasible_value("missing", "a") is None


class TestTiming:
    def test_time_build_returns_result(self):
        seconds, value = time_build(lambda: sum(range(1000)))
        assert seconds >= 0.0
        assert value == 499500

    def test_time_queries_positive(self):
        g = path_graph(10)
        workload = random_queries(g, 10, seed=0)
        avg = time_queries(lambda s, t, w: 0.0, workload, min_duration=0.01)
        assert avg > 0.0

    def test_time_queries_empty_workload(self):
        g = path_graph(3)
        workload = random_queries(g, 0)
        assert time_queries(lambda s, t, w: 0.0, workload) == 0.0


class TestBuildAllIndexes:
    def test_all_methods_built(self):
        g = gnm_random_graph(20, 40, num_qualities=3, seed=1)
        built = build_all_indexes(g, naive_entry_budget=None)
        assert built.naive is not None
        assert built.wc.entry_count() == built.wc_plus.entry_count()
        assert built.wc_seconds > 0 and built.wc_plus_seconds > 0

    def test_frozen_snapshot_built(self):
        g = gnm_random_graph(20, 40, num_qualities=3, seed=1)
        built = build_all_indexes(g, naive_entry_budget=None)
        assert built.wc_frozen is not None
        assert built.freeze_seconds is not None and built.freeze_seconds > 0
        assert built.wc_frozen.entry_count() == built.wc_plus.entry_count()

    def test_freeze_opt_out(self):
        g = gnm_random_graph(20, 40, num_qualities=3, seed=1)
        built = build_all_indexes(g, naive_entry_budget=None, freeze=False)
        assert built.wc_frozen is None and built.freeze_seconds is None
        engines = query_engines(g, built, include_dijkstra=False)
        assert "WC-FROZEN" not in engines

    def test_naive_budget_triggers_inf(self):
        g = gnm_random_graph(25, 80, num_qualities=4, seed=2)
        built = build_all_indexes(g, naive_entry_budget=5)
        assert built.naive is None
        assert built.naive_seconds is None

    def test_wc_and_plus_share_label_sets(self):
        g = gnm_random_graph(15, 30, num_qualities=3, seed=3)
        built = build_all_indexes(g, naive_entry_budget=None)
        for v in g.vertices():
            assert built.wc.entries_of(v) == built.wc_plus.entries_of(v)


class TestQueryEngines:
    def make(self, include_dijkstra=True, budget=None):
        g = gnm_random_graph(15, 35, num_qualities=3, seed=4)
        built = build_all_indexes(g, naive_entry_budget=budget)
        return g, built, query_engines(g, built, include_dijkstra=include_dijkstra)

    def test_lineup_road(self):
        _, _, engines = self.make(include_dijkstra=True)
        assert set(engines) == {
            "W-BFS",
            "Dijkstra",
            "C-BFS",
            "Naive",
            "WC-INDEX",
            "WC-INDEX+",
            "WC-FROZEN",
        }

    def test_lineup_social_drops_dijkstra(self):
        _, _, engines = self.make(include_dijkstra=False)
        assert "Dijkstra" not in engines

    def test_naive_missing_when_budgeted_out(self):
        _, built, engines = self.make(budget=5)
        assert built.naive is None
        assert "Naive" not in engines

    def test_engines_agree(self):
        g, _, engines = self.make()
        for w in (1.0, 2.0, 3.0):
            for s in range(0, 15, 3):
                for t in range(0, 15, 4):
                    answers = {name: fn(s, t, w) for name, fn in engines.items()}
                    assert len(set(answers.values())) == 1, answers


class TestExtensionEngines:
    def make(self):
        from repro.bench.harness import (
            build_extension_indexes,
            extension_query_engines,
        )
        from repro.graph.generators import (
            gnm_random_graph,
            oriented_copy,
            with_random_lengths,
        )

        base = gnm_random_graph(15, 35, num_qualities=3, seed=4)
        digraph = oriented_copy(base, seed=4)
        wgraph = with_random_lengths(base, seed=4)
        built = build_extension_indexes(digraph, wgraph)
        return digraph, wgraph, built, extension_query_engines(built)

    def test_lineup(self):
        from repro.bench.harness import EXTENSION_QUERY_METHODS

        _, _, built, engines = self.make()
        assert set(engines) == set(EXTENSION_QUERY_METHODS)
        assert built.directed_seconds > 0
        assert built.weighted_seconds > 0
        assert built.directed_freeze_seconds is not None

    def test_frozen_engines_agree_with_list(self):
        _, _, _, engines = self.make()
        for w in (1.0, 2.0, 3.0):
            for s in range(0, 15, 3):
                for t in range(0, 15, 4):
                    assert engines["WC-DIR"](s, t, w) == engines[
                        "WC-FROZEN-DIR"
                    ](s, t, w)
                    assert engines["WC-W"](s, t, w) == engines[
                        "WC-FROZEN-W"
                    ](s, t, w)


class TestServingLineup:
    def test_lineup_and_agreement(self, tmp_path):
        from repro.bench.harness import (
            SERVING_QUERY_METHODS,
            ServingLineup,
        )
        from repro.core import build_wc_index_plus, save_frozen

        g = gnm_random_graph(15, 35, num_qualities=3, seed=4)
        index = build_wc_index_plus(g, "degree")
        path = tmp_path / "g.wcxb"
        save_frozen(index, path)
        workload = list(random_queries(g, 60, seed=2))
        expected = index.distance_many(workload)
        with ServingLineup(path, workers=2) as lineup:
            assert set(lineup.batch_engines) == set(SERVING_QUERY_METHODS)
            for name, batch in lineup.batch_engines.items():
                assert batch(workload) == expected, name
        # Closed: the pool is down and the mmap attach released.
        assert lineup.server.closed
