"""Tests for table rendering."""

import pytest

from repro.bench.harness import Cell, ExperimentTable
from repro.bench.reporting import flatten, format_markdown, format_table


@pytest.fixture
def table():
    t = ExperimentTable("exp9", "Demo", "s", ["m1", "m2"])
    t.set("NY", "m1", Cell(1.5))
    t.set("NY", "m2", Cell(None, "INF"))
    t.set("FLA", "m1", Cell(42.0))
    return t


class TestTextFormat:
    def test_contains_header_and_values(self, table):
        text = format_table(table)
        assert "exp9: Demo [s]" in text
        assert "m1" in text and "m2" in text
        assert "1.50" in text
        assert "INF" in text
        assert "42" in text

    def test_missing_cell_rendered_as_dash(self, table):
        text = format_table(table)
        assert "-" in text  # FLA has no m2 measurement

    def test_alignment(self, table):
        lines = format_table(table).splitlines()
        # All body lines equal width per column: dataset column padded.
        assert lines[1].startswith("dataset")


class TestMarkdownFormat:
    def test_pipe_table(self, table):
        md = format_markdown(table)
        assert md.count("|") >= 12
        assert "**exp9: Demo**" in md
        assert "| NY | 1.50 | INF |" in md


class TestFlatten:
    def test_single_table(self, table):
        assert flatten(table) == [table]

    def test_dict_of_tables(self, table):
        assert flatten({"a": table, "b": table}) == [table, table]

    def test_bad_type(self):
        with pytest.raises(TypeError):
            flatten(42)
