"""Tests for table rendering."""

import pytest

from repro.bench.harness import Cell, ExperimentTable
from repro.bench.reporting import flatten, format_markdown, format_table


@pytest.fixture
def table():
    t = ExperimentTable("exp9", "Demo", "s", ["m1", "m2"])
    t.set("NY", "m1", Cell(1.5))
    t.set("NY", "m2", Cell(None, "INF"))
    t.set("FLA", "m1", Cell(42.0))
    return t


class TestTextFormat:
    def test_contains_header_and_values(self, table):
        text = format_table(table)
        assert "exp9: Demo [s]" in text
        assert "m1" in text and "m2" in text
        assert "1.50" in text
        assert "INF" in text
        assert "42" in text

    def test_missing_cell_rendered_as_dash(self, table):
        text = format_table(table)
        assert "-" in text  # FLA has no m2 measurement

    def test_alignment(self, table):
        lines = format_table(table).splitlines()
        # All body lines equal width per column: dataset column padded.
        assert lines[1].startswith("dataset")


class TestMarkdownFormat:
    def test_pipe_table(self, table):
        md = format_markdown(table)
        assert md.count("|") >= 12
        assert "**exp9: Demo**" in md
        assert "| NY | 1.50 | INF |" in md


class TestFlatten:
    def test_single_table(self, table):
        assert flatten(table) == [table]

    def test_dict_of_tables(self, table):
        assert flatten({"a": table, "b": table}) == [table, table]

    def test_bad_type(self):
        with pytest.raises(TypeError):
            flatten(42)


class TestTrajectoryMerge:
    def row(self, dataset, family, speedup=2.0):
        return {"dataset": dataset, "family": family, "speedup": speedup}

    def test_fresh_file(self, tmp_path):
        from repro.bench.reporting import merge_query_engine_rows

        path = tmp_path / "BENCH.json"
        payload = merge_query_engine_rows(
            path, {"undirected": 2.0}, [self.row("FLA", "undirected")]
        )
        assert path.exists()
        assert payload["benchmark"] == "query_engines"
        assert payload["gates"] == {"undirected": 2.0}
        assert [r["dataset"] for r in payload["results"]] == ["FLA"]

    def test_families_merge_without_clobbering(self, tmp_path):
        from repro.bench.reporting import merge_query_engine_rows

        path = tmp_path / "BENCH.json"
        merge_query_engine_rows(
            path, {"undirected": 2.0}, [self.row("FLA", "undirected")]
        )
        merge_query_engine_rows(
            path,
            {"directed": 2.0, "weighted": 2.0},
            [self.row("NY", "directed"), self.row("NY", "weighted")],
        )
        # Refreshing one family preserves the others' rows and gates.
        payload = merge_query_engine_rows(
            path, {"undirected": 1.5}, [self.row("EU", "undirected", 3.0)]
        )
        assert payload["gates"] == {
            "undirected": 1.5,
            "directed": 2.0,
            "weighted": 2.0,
        }
        families = [(r["dataset"], r["family"]) for r in payload["results"]]
        assert families == [
            ("EU", "undirected"),
            ("NY", "directed"),
            ("NY", "weighted"),
        ]

    def test_legacy_single_gate_layout_upgraded(self, tmp_path):
        import json

        from repro.bench.reporting import merge_query_engine_rows

        path = tmp_path / "BENCH.json"
        path.write_text(
            json.dumps(
                {
                    "benchmark": "frozen_vs_list",
                    "gate": 2.0,
                    "results": [{"dataset": "FLA", "speedup": 2.4}],
                }
            )
        )
        payload = merge_query_engine_rows(
            path, {"directed": 2.0}, [self.row("NY", "directed")]
        )
        assert payload["gates"] == {"undirected": 2.0, "directed": 2.0}
        assert payload["results"][0]["family"] == "undirected"
        assert payload["results"][1]["family"] == "directed"

    def test_corrupt_file_is_replaced(self, tmp_path):
        from repro.bench.reporting import merge_query_engine_rows

        path = tmp_path / "BENCH.json"
        path.write_text("not json{")
        payload = merge_query_engine_rows(
            path, {"undirected": 2.0}, [self.row("FLA", "undirected")]
        )
        assert len(payload["results"]) == 1
