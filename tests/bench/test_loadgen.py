"""Tests for the load generator (closed- and open-loop traffic)."""

import math

import pytest

from repro.bench.loadgen import LoadReport, closed_loop, open_loop
from repro.core import build_wc_index_plus
from repro.graph.generators import scale_free_network
from repro.serve import InProcessClient
from repro.serve.client import QueryClient
from repro.serve.errors import ServerOverloadedError
from repro.workloads.queries import random_queries


@pytest.fixture(scope="module")
def frozen():
    network = scale_free_network(80, 3, num_qualities=4, seed=17)
    return build_wc_index_plus(network).freeze()


@pytest.fixture(scope="module")
def workload(frozen):
    network = scale_free_network(80, 3, num_qualities=4, seed=17)
    return list(random_queries(network, 50, seed=9))


class _SheddingClient(QueryClient):
    """Refuses every other request — the admission controller's shape."""

    def __init__(self) -> None:
        self.calls = 0

    def distance_many(self, queries):
        self.calls += 1
        if self.calls % 2 == 0:
            raise ServerOverloadedError("budget full")
        return [0.0] * len(queries)

    def close(self) -> None:
        pass


class TestClosedLoop:
    def test_drives_and_reports(self, frozen, workload):
        report = closed_loop(
            lambda: InProcessClient(frozen),
            workload,
            clients=2,
            duration_s=0.3,
        )
        assert report.mode == "closed"
        assert report.ok > 0
        assert report.sent == report.ok + report.overloaded + report.failed
        assert report.throughput_qps > 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms
        assert math.isfinite(report.p99_ms)

    def test_batched_requests_count_queries(self, frozen, workload):
        report = closed_loop(
            lambda: InProcessClient(frozen),
            workload,
            clients=1,
            duration_s=0.2,
            batch=8,
        )
        assert report.ok % 8 == 0

    def test_overloads_counted_not_failed(self, workload):
        report = closed_loop(
            _SheddingClient, workload, clients=1, duration_s=0.2
        )
        assert report.overloaded > 0
        assert report.failed == 0
        assert report.sent == report.ok + report.overloaded

    def test_needs_queries(self, frozen):
        with pytest.raises(ValueError, match="at least one query"):
            closed_loop(lambda: InProcessClient(frozen), [])

    def test_needs_clients(self, frozen, workload):
        with pytest.raises(ValueError, match="clients"):
            closed_loop(
                lambda: InProcessClient(frozen), workload, clients=0
            )


class TestOpenLoop:
    def test_poisson_traffic_reports(self, frozen, workload):
        report = open_loop(
            lambda: InProcessClient(frozen),
            workload,
            rate_qps=500.0,
            duration_s=0.4,
            clients=2,
        )
        assert report.mode == "open"
        assert report.offered_qps == 500.0
        assert report.ok > 0
        assert report.sent == report.ok + report.overloaded + report.failed

    def test_bounded_outstanding_drops_instead_of_ballooning(self, workload):
        import time

        class Stalled(QueryClient):
            def distance_many(self, queries):
                time.sleep(0.05)
                return [0.0] * len(queries)

            def close(self):
                pass

        # Capacity ~20 q/s per client against 2000 q/s offered: the
        # bounded queue must shed arrivals client-side, not queue them.
        report = open_loop(
            Stalled,
            workload,
            rate_qps=2000.0,
            duration_s=0.3,
            clients=1,
            max_outstanding=4,
        )
        assert report.dropped > 0
        assert report.sent + report.dropped > report.sent

    def test_needs_rate(self, frozen, workload):
        with pytest.raises(ValueError, match="rate_qps"):
            open_loop(
                lambda: InProcessClient(frozen), workload, rate_qps=0.0
            )


class TestLoadReport:
    def test_format_is_parseable(self):
        report = LoadReport(
            mode="closed",
            clients=4,
            duration_s=2.0,
            offered_qps=None,
            sent=100,
            ok=90,
            overloaded=10,
            failed=0,
            dropped=0,
            latencies_ms=[1.0, 2.0, 3.0],
        )
        text = report.format()
        assert "overloaded=10" in text
        assert "failed=0" in text
        assert "p99=" in text
        assert f"throughput={90 / 2.0:.1f}" in text

    def test_percentiles_on_empty_run_are_nan(self):
        report = LoadReport(
            mode="open",
            clients=1,
            duration_s=1.0,
            offered_qps=10.0,
            sent=0,
            ok=0,
            overloaded=0,
            failed=0,
            dropped=0,
        )
        assert math.isnan(report.p99_ms)
        assert report.throughput_qps == 0.0


class TestServerSnapshot:
    def test_snapshot_lands_on_the_report(self, frozen, workload):
        def snapshot():
            return {
                "stats": {
                    "latency": {"p50_ms": 0.1, "p95_ms": 0.2, "p99_ms": 0.3},
                    "queries": {"answered": 7, "shed": 1},
                }
            }

        report = closed_loop(
            lambda: InProcessClient(frozen),
            workload,
            clients=1,
            duration_s=0.1,
            server_snapshot=snapshot,
        )
        assert report.server_latency()["p99_ms"] == 0.3
        text = report.format()
        assert "server  p50=0.100ms" in text
        assert "answered=7 shed=1" in text

    def test_dead_server_loses_the_row_not_the_report(self, frozen, workload):
        def snapshot():
            raise OSError("connection refused")

        report = closed_loop(
            lambda: InProcessClient(frozen),
            workload,
            clients=1,
            duration_s=0.1,
            server_snapshot=snapshot,
        )
        assert report.server_metrics is None
        assert report.server_latency() == {}
        assert "server " not in report.format()
