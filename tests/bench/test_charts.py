"""Tests for ASCII chart rendering."""

from repro.bench.charts import render_chart, render_charts
from repro.bench.harness import Cell, ExperimentTable


def make_table(values):
    table = ExperimentTable("figX", "Demo", "s", ["m1", "m2"])
    for row, (a, b) in values.items():
        table.set(row, "m1", a)
        table.set(row, "m2", b)
    return table


class TestRenderChart:
    def test_contains_bars_and_values(self):
        table = make_table({"NY": (Cell(1.0), Cell(2.0))})
        text = render_chart(table)
        assert "figX: Demo" in text
        assert "#" in text
        assert "1" in text and "2" in text

    def test_inf_bar(self):
        table = make_table({"NY": (Cell(1.0), Cell(None, "INF"))})
        text = render_chart(table)
        assert "INF" in text
        assert "x" in text

    def test_log_scale_triggered_by_spread(self):
        table = make_table({"NY": (Cell(0.001), Cell(100.0))})
        assert "log scale" in render_chart(table)

    def test_linear_scale_for_tight_spread(self):
        table = make_table({"NY": (Cell(1.0), Cell(2.0))})
        assert "linear scale" in render_chart(table)

    def test_larger_value_longer_bar(self):
        table = make_table({"NY": (Cell(1.0), Cell(10.0))})
        lines = [l for l in render_chart(table).splitlines() if "|" in l]
        bar1 = lines[0].split("|")[1].count("#")
        bar2 = lines[1].split("|")[1].count("#")
        assert bar2 > bar1

    def test_missing_cell(self):
        table = ExperimentTable("figX", "Demo", "s", ["m1", "m2"])
        table.set("NY", "m1", Cell(1.0))
        assert "not measured" in render_chart(table)

    def test_empty_table(self):
        table = ExperimentTable("figX", "Demo", "s", ["m1"])
        assert "no data" in render_chart(table)

    def test_render_charts_joins(self):
        t = make_table({"NY": (Cell(1.0), Cell(2.0))})
        combined = render_charts([t, t])
        assert combined.count("figX: Demo") == 2


class TestCLIChart:
    def test_chart_flag(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--exp", "table5", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "storage" in out
