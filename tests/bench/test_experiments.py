"""Smoke + shape tests for the experiment definitions (tiny scale).

The full-size shape assertions live in ``benchmarks/``; here we verify the
experiment plumbing end to end at a scale small enough for unit testing.
"""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ablation_ordering,
    ablation_pruning,
    ablation_query_kernel,
    exp4_large_w,
    exp5_social,
    exp_table3,
    exp_table4,
    exp_table5,
    exp_table6,
    exp1_indexing_time_road,
    exp2_index_size_road,
    exp3_query_time_road,
    experiment_ids,
    lcr_comparison,
)

TINY = 0.1  # scale factor for smoke tests


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(experiment_ids()) == {
            "table3",
            "table4",
            "table5",
            "table6",
            "exp1",
            "exp2",
            "exp3",
            "exp4",
            "exp5",
            "extensions",
            "ablation-order",
            "ablation-query",
            "ablation-prune",
            "ablation-hybrid",
            "lcr",
            "dynamic",
        }
        for fn in EXPERIMENTS.values():
            assert callable(fn)


class TestDatasetTables:
    def test_table3_ladder(self):
        table = exp_table3(scale=TINY)
        sizes = [table.feasible_value(n, "|V|") for n in table.rows]
        assert sizes == sorted(sizes)
        assert all(table.feasible_value(n, "|w|") == 5 for n in table.rows)

    def test_table4_w_values(self):
        table = exp_table4(scale=TINY)
        assert table.feasible_value("SO-Y", "|w|") == 9
        assert table.feasible_value("MV-10", "|w|") == 5

    def test_table5_storage_grows_with_edges(self):
        table = exp_table5(scale=TINY)
        assert table.feasible_value("CTR", "storage") > table.feasible_value(
            "NY", "storage"
        )

    def test_table6_rows(self):
        table = exp_table6(scale=TINY)
        assert len(table.rows) == 7


class TestIndexingExperiments:
    def test_exp1_columns_and_rows(self):
        table = exp1_indexing_time_road(scale=TINY, limit=3)
        assert table.columns == ["Naive", "WC-INDEX", "WC-INDEX+"]
        assert list(table.rows) == ["NY", "BAY", "COL"]
        for row in table.rows:
            assert table.feasible_value(row, "WC-INDEX+") is not None

    def test_exp2_wc_sizes_equal(self):
        table = exp2_index_size_road(scale=TINY, limit=3)
        for row in table.rows:
            assert table.feasible_value(row, "WC-INDEX") == table.feasible_value(
                row, "WC-INDEX+"
            )

    def test_exp4_returns_time_and_size(self):
        tables = exp4_large_w(scale=TINY, limit=2, num_qualities=8)
        assert set(tables) == {"time", "size"}
        for row in tables["size"].rows:
            naive = tables["size"].feasible_value(row, "Naive")
            wc = tables["size"].feasible_value(row, "WC-INDEX")
            if naive is not None:
                assert naive > wc  # per-level duplication dominates


class TestQueryExperiments:
    def test_exp3_online_slower_than_index(self):
        table = exp3_query_time_road(scale=TINY, limit=2, query_count=30)
        for row in table.rows:
            cbfs = table.feasible_value(row, "C-BFS")
            wcp = table.feasible_value(row, "WC-INDEX+")
            assert cbfs is not None and wcp is not None
            assert wcp > 0

    def test_exp3_times_frozen_engine(self):
        table = exp3_query_time_road(scale=TINY, limit=1, query_count=20)
        assert "WC-FROZEN" in table.columns
        for row in table.rows:
            assert table.feasible_value(row, "WC-FROZEN") is not None

    def test_exp5_three_tables(self):
        tables = exp5_social(scale=TINY, limit=2, query_count=20)
        assert set(tables) == {"time", "size", "query"}
        assert "Dijkstra" not in tables["query"].columns
        assert "WC-FROZEN" in tables["query"].columns


class TestAblations:
    def test_ordering_ablation_shape(self):
        table = ablation_ordering(scale=TINY)
        assert "CAL" in table.rows and "EU" in table.rows
        for ordering in ("degree", "treedec", "hybrid"):
            assert table.feasible_value("CAL", f"{ordering}-entries") > 0

    def test_query_kernel_ablation(self):
        table = ablation_query_kernel(scale=TINY, query_count=20)
        assert set(table.columns) == {"naive", "binary", "linear"}

    def test_pruning_ablation(self):
        table = ablation_pruning(scale=TINY)
        assert table.feasible_value("no-memo", "memo_pruned") == 0
        assert table.feasible_value("with-memo", "cover_tests") <= (
            table.feasible_value("no-memo", "cover_tests")
        )

    def test_lcr_comparison(self):
        table = lcr_comparison(scale=TINY, names=("NY", "BAY"))
        for row in ("NY", "BAY"):
            lcr_entries = table.feasible_value(row, "lcr-entries")
            wc_entries = table.feasible_value(row, "wc+-entries")
            if lcr_entries is not None:
                assert lcr_entries >= wc_entries


class TestNewExperiments:
    def test_hybrid_threshold_sweep(self):
        from repro.bench.experiments import ablation_hybrid_threshold

        table = ablation_hybrid_threshold(scale=TINY, thresholds=(0, 16, None))
        assert set(table.rows) == {"delta=0", "delta=16", "default"}
        for row in table.rows:
            assert table.feasible_value(row, "entries") > 0

    def test_dynamic_updates(self):
        from repro.bench.experiments import dynamic_updates

        table = dynamic_updates(scale=TINY, num_updates=3)
        assert table.feasible_value("incremental", "seconds_per_update") > 0
        assert table.feasible_value("rebuild", "speedup_vs_rebuild") == 1.0


class TestCLI:
    def test_main_runs_small_experiment(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        out = tmp_path / "report.txt"
        code = main(["--exp", "ablation-query", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Query kernel ablation" in captured.out
        assert out.read_text().strip()

    def test_main_requires_selection(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main([])

    def test_main_markdown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--exp", "table5", "--markdown"]) == 0
        assert "| dataset |" in capsys.readouterr().out
