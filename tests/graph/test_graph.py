"""Unit tests for the undirected quality graph."""

import pytest

from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_vertices_without_edges(self):
        g = Graph(5)
        assert g.num_vertices == 5
        assert all(g.degree(v) == 0 for v in g.vertices())

    def test_edges_in_constructor(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.num_edges == 2
        assert g.quality(0, 1) == 2.0
        assert g.quality(1, 2) == 3.0

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)


class TestAddEdge:
    def test_undirected_symmetry(self):
        g = Graph(2, [(0, 1, 4.0)])
        assert g.quality(0, 1) == 4.0
        assert g.quality(1, 0) == 4.0
        assert g.has_edge(1, 0)

    def test_parallel_edge_keeps_max_quality(self):
        g = Graph(2)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 5.0)
        assert g.num_edges == 1
        assert g.quality(0, 1) == 5.0
        assert g.quality(1, 0) == 5.0

    def test_parallel_edge_lower_quality_ignored(self):
        g = Graph(2, [(0, 1, 5.0)])
        g.add_edge(1, 0, 2.0)
        assert g.quality(0, 1) == 5.0
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError, match="self loop"):
            g.add_edge(1, 1, 1.0)

    def test_out_of_range_vertex_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError, match="out of range"):
            g.add_edge(0, 2, 1.0)
        with pytest.raises(ValueError, match="out of range"):
            g.add_edge(-1, 0, 1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan")])
    def test_non_positive_quality_rejected(self, bad):
        g = Graph(2)
        with pytest.raises(ValueError, match="positive"):
            g.add_edge(0, 1, bad)


class TestRemoveEdge:
    def test_remove_returns_quality(self):
        g = Graph(2, [(0, 1, 3.5)])
        assert g.remove_edge(0, 1) == 3.5
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_remove_missing_edge_raises(self):
        g = Graph(2)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_remove_then_readd(self):
        g = Graph(2, [(0, 1, 1.0)])
        g.remove_edge(0, 1)
        g.add_edge(0, 1, 2.0)
        assert g.num_edges == 1
        assert g.quality(0, 1) == 2.0


class TestInspection:
    def test_degrees(self):
        g = Graph(4, [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.degrees() == [3, 1, 1, 1]
        assert g.max_degree() == 3

    def test_neighbors(self):
        g = Graph(3, [(0, 1, 2.0), (0, 2, 3.0)])
        assert sorted(g.neighbors(0)) == [(1, 2.0), (2, 3.0)]
        assert g.neighbor_items(1) == [(0, 2.0)]

    def test_edges_each_once_with_u_less_than_v(self):
        g = Graph(3, [(2, 0, 1.0), (1, 2, 2.0)])
        edges = sorted(g.edges())
        assert edges == [(0, 2, 1.0), (1, 2, 2.0)]

    def test_distinct_qualities_sorted(self):
        g = Graph(4, [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 3.0), (0, 3, 2.0)])
        assert g.distinct_qualities() == [1.0, 2.0, 3.0]
        assert g.num_distinct_qualities() == 3

    def test_quality_missing_edge_raises(self):
        g = Graph(3)
        with pytest.raises(KeyError):
            g.quality(0, 1)

    def test_repr(self):
        g = Graph(3, [(0, 1, 1.0)])
        assert "|V|=3" in repr(g)
        assert "|E|=1" in repr(g)


class TestDerivation:
    def test_subgraph_at_least_filters(self):
        g = Graph(4, [(0, 1, 3.0), (1, 2, 1.0), (2, 3, 2.0)])
        sub = g.subgraph_at_least(2.0)
        assert sub.num_vertices == 4
        assert sub.has_edge(0, 1)
        assert not sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)

    def test_subgraph_at_least_identity_below_min(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.subgraph_at_least(1.0) == g

    def test_subgraph_above_max_is_empty(self):
        g = Graph(3, [(0, 1, 2.0)])
        assert g.subgraph_at_least(99.0).num_edges == 0

    def test_copy_is_independent(self):
        g = Graph(3, [(0, 1, 1.0)])
        h = g.copy()
        h.add_edge(1, 2, 2.0)
        assert g.num_edges == 1
        assert h.num_edges == 2
        assert g == Graph(3, [(0, 1, 1.0)])

    def test_relabeled_permutes(self):
        g = Graph(3, [(0, 1, 5.0)])
        h = g.relabeled([2, 0, 1])
        assert h.has_edge(2, 0)
        assert h.quality(2, 0) == 5.0
        assert not h.has_edge(0, 1)

    def test_relabeled_rejects_non_permutation(self):
        g = Graph(3)
        with pytest.raises(ValueError):
            g.relabeled([0, 0, 1])

    def test_equality(self):
        a = Graph(2, [(0, 1, 1.0)])
        b = Graph(2, [(1, 0, 1.0)])
        c = Graph(2, [(0, 1, 2.0)])
        assert a == b
        assert a != c
        assert a != "not a graph"
