"""Tests for graph serialization (edge list + quality DIMACS)."""

import io

import pytest

from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph
from repro.graph.io import (
    GraphFormatError,
    from_edge_list_string,
    read_dimacs,
    read_directed_edge_list,
    read_edge_list,
    read_weighted_edge_list,
    to_edge_list_string,
    write_dimacs,
    write_directed_edge_list,
    write_edge_list,
    write_weighted_edge_list,
)


class TestEdgeList:
    def test_round_trip_string(self):
        g = gnm_random_graph(15, 30, seed=1)
        assert from_edge_list_string(to_edge_list_string(g)) == g

    def test_round_trip_file(self, tmp_path):
        g = gnm_random_graph(10, 12, seed=2)
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_header_preserves_isolated_vertices(self):
        g = Graph(5, [(0, 1, 1.0)])  # vertices 2..4 isolated
        assert from_edge_list_string(to_edge_list_string(g)).num_vertices == 5

    def test_without_header_uses_max_id(self):
        g = read_edge_list(io.StringIO("0 3 2.5\n"))
        assert g.num_vertices == 4
        assert g.quality(0, 3) == 2.5

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\n0 1 1.0\n# another\n1 2 2.0\n"
        g = read_edge_list(io.StringIO(text))
        assert g.num_edges == 2

    def test_malformed_line_reports_lineno(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            read_edge_list(io.StringIO("0 1 1.0\n0 1\n"))

    def test_non_numeric_rejected(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("a b c\n"))

    def test_vertex_exceeding_header_rejected(self):
        with pytest.raises(GraphFormatError, match="exceeds"):
            read_edge_list(io.StringIO("# vertices 2\n0 5 1.0\n"))

    def test_bad_header_count(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("# vertices many\n"))


class TestDimacs:
    def test_round_trip(self, tmp_path):
        g = gnm_random_graph(12, 25, seed=3)
        path = tmp_path / "graph.gr"
        write_dimacs(g, path)
        assert read_dimacs(path) == g

    def test_format_shape(self):
        g = Graph(2, [(0, 1, 2.0)])
        buffer = io.StringIO()
        write_dimacs(g, buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0].startswith("c ")
        assert lines[1] == "p sp 2 1"
        assert lines[2] == "a 1 2 2"

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError, match="problem line"):
            read_dimacs(io.StringIO("a 1 2 1.0\n"))

    def test_duplicate_problem_line(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            read_dimacs(io.StringIO("p sp 2 0\np sp 2 0\n"))

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphFormatError, match="declared"):
            read_dimacs(io.StringIO("p sp 3 2\na 1 2 1.0\n"))

    def test_unknown_record(self):
        with pytest.raises(GraphFormatError, match="unknown record"):
            read_dimacs(io.StringIO("p sp 2 0\nx 1 2\n"))

    def test_empty_file(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO(""))


class TestQualityPrecision:
    def test_float_qualities_survive_round_trip(self):
        g = Graph(3, [(0, 1, 2.25), (1, 2, 0.125)])
        assert from_edge_list_string(to_edge_list_string(g)) == g


class TestDirectedEdgeList:
    def test_round_trip(self):
        from repro.graph.digraph import DiGraph

        g = DiGraph(4, [(0, 1, 3.0), (1, 0, 1.0), (2, 3, 2.5)])
        buffer = io.StringIO()
        write_directed_edge_list(g, buffer)
        loaded = read_directed_edge_list(io.StringIO(buffer.getvalue()))
        assert loaded.num_vertices == 4
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_arcs_stay_directed(self):
        loaded = read_directed_edge_list(io.StringIO("0 1 2.0\n"))
        assert loaded.has_edge(0, 1)
        assert not loaded.has_edge(1, 0)

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError, match="line 1"):
            read_directed_edge_list(io.StringIO("0 1\n"))

    def test_vertex_exceeds_declared_count(self):
        with pytest.raises(GraphFormatError, match="exceeds"):
            read_directed_edge_list(
                io.StringIO("# vertices 2\n0 5 1.0\n")
            )


class TestWeightedEdgeList:
    def test_round_trip(self):
        from repro.graph.weighted import WeightedGraph

        g = WeightedGraph(
            4, [(0, 1, 2.25, 3.0), (1, 2, 0.125, 1.0), (2, 3, 9.0, 2.0)]
        )
        buffer = io.StringIO()
        write_weighted_edge_list(g, buffer)
        loaded = read_weighted_edge_list(io.StringIO(buffer.getvalue()))
        assert loaded.num_vertices == 4
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError, match="line 2"):
            read_weighted_edge_list(io.StringIO("0 1 1.0 1.0\n0 2 1.0\n"))

    def test_cannot_parse(self):
        with pytest.raises(GraphFormatError, match="cannot parse"):
            read_weighted_edge_list(io.StringIO("a b c d\n"))
