"""Unit tests for the weighted (length + quality) graph."""

import pytest

from repro.graph.weighted import WeightedGraph


class TestWeightedGraph:
    def test_edge_carries_length_and_quality(self):
        g = WeightedGraph(2, [(0, 1, 2.5, 3.0)])
        assert g.edge(0, 1) == (2.5, 3.0)
        assert g.edge(1, 0) == (2.5, 3.0)
        assert g.num_edges == 1

    def test_neighbors_iteration(self):
        g = WeightedGraph(3, [(0, 1, 1.0, 2.0), (0, 2, 4.0, 1.0)])
        assert sorted(g.neighbors(0)) == [(1, 1.0, 2.0), (2, 4.0, 1.0)]

    def test_dominating_replacement(self):
        g = WeightedGraph(2, [(0, 1, 5.0, 1.0)])
        g.add_edge(0, 1, 2.0, 3.0)  # shorter AND better quality: replaces
        assert g.edge(0, 1) == (2.0, 3.0)
        assert g.num_edges == 1

    def test_dominated_parallel_edge_ignored(self):
        g = WeightedGraph(2, [(0, 1, 2.0, 3.0)])
        g.add_edge(0, 1, 5.0, 1.0)
        assert g.edge(0, 1) == (2.0, 3.0)

    def test_incomparable_parallel_edge_prefers_shorter(self):
        g = WeightedGraph(2, [(0, 1, 2.0, 1.0)])
        g.add_edge(0, 1, 5.0, 9.0)  # longer but higher quality: ignored
        assert g.edge(0, 1) == (2.0, 1.0)
        g.add_edge(0, 1, 1.0, 0.5)  # shorter but worse quality: wins
        assert g.edge(0, 1) == (1.0, 0.5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            WeightedGraph(1, [(0, 0, 1.0, 1.0)])

    def test_non_positive_length_rejected(self):
        with pytest.raises(ValueError, match="length"):
            WeightedGraph(2, [(0, 1, 0.0, 1.0)])

    def test_non_positive_quality_rejected(self):
        with pytest.raises(ValueError, match="quality"):
            WeightedGraph(2, [(0, 1, 1.0, -2.0)])

    def test_edges_and_distinct_qualities(self):
        g = WeightedGraph(3, [(0, 1, 1.0, 2.0), (1, 2, 2.0, 2.0)])
        assert sorted(g.edges()) == [(0, 1, 1.0, 2.0), (1, 2, 2.0, 2.0)]
        assert g.distinct_qualities() == [2.0]

    def test_degrees(self):
        g = WeightedGraph(3, [(0, 1, 1.0, 1.0), (0, 2, 1.0, 1.0)])
        assert g.degree(0) == 2
        assert g.degrees() == [2, 1, 1]


class TestWeightedMutation:
    def test_remove_edge_returns_the_pair(self):
        g = WeightedGraph(3, [(0, 1, 2.0, 3.0), (1, 2, 1.0, 1.0)])
        assert g.remove_edge(0, 1) == (2.0, 3.0)
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = WeightedGraph(2)
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_copy_is_independent(self):
        g = WeightedGraph(3, [(0, 1, 2.0, 3.0)])
        clone = g.copy()
        clone.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert clone.num_edges == 0
