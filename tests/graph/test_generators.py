"""Tests for the synthetic graph generators."""

import pytest

from repro.baselines.online import ConstrainedBFS
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    gnm_random_graph,
    grid_road_network,
    is_connected,
    largest_connected_component,
    paper_figure1,
    paper_figure3,
    path_graph,
    ratings_quality_sampler,
    scale_free_network,
    star_graph,
    uniform_quality_sampler,
)
from repro.graph.stats import double_sweep_diameter_estimate


class TestPaperExamples:
    def test_figure3_shape(self):
        g = paper_figure3()
        assert g.num_vertices == 6
        assert g.num_edges == 8

    def test_figure3_matches_example1_distances(self):
        # Example 2 facts: quality of each named edge.
        g = paper_figure3()
        assert g.quality(0, 1) == 3.0
        assert g.quality(0, 3) == 1.0
        assert g.quality(1, 2) == 5.0
        assert g.quality(1, 3) == 2.0
        assert g.quality(2, 3) == 4.0
        assert g.quality(3, 4) == 4.0
        assert g.quality(3, 5) == 2.0
        assert g.quality(4, 5) == 3.0

    def test_figure1_qos_semantics(self):
        g, ids = paper_figure1()
        oracle = ConstrainedBFS(g)
        # With a 3 Mbps guarantee the S1->R2 shortcut is unusable: dist 4.
        assert oracle.distance(ids["R3"], ids["R2"], 3.0) == 4.0
        # Without the guarantee the 2-hop route works.
        assert oracle.distance(ids["R3"], ids["R2"], 1.0) == 2.0


class TestGridRoadNetwork:
    def test_size_and_determinism(self):
        a = grid_road_network(10, 12, seed=5)
        b = grid_road_network(10, 12, seed=5)
        assert a == b
        assert a.num_vertices == 120

    def test_different_seeds_differ(self):
        a = grid_road_network(10, 12, seed=5)
        b = grid_road_network(10, 12, seed=6)
        assert a != b

    def test_road_like_degree(self):
        g = grid_road_network(20, 20, seed=1)
        avg = 2.0 * g.num_edges / g.num_vertices
        assert 2.0 <= avg <= 4.2  # road regime, never dense
        assert g.max_degree() <= 8

    def test_no_isolated_vertices(self):
        g = grid_road_network(15, 15, seed=2, perforation=0.3)
        assert all(g.degree(v) >= 1 for v in g.vertices())

    def test_diameter_grows_with_side(self):
        small = grid_road_network(5, 5, seed=0, perforation=0.0)
        large = grid_road_network(15, 15, seed=0, perforation=0.0)
        assert double_sweep_diameter_estimate(large) > double_sweep_diameter_estimate(
            small
        )

    def test_quality_range(self):
        g = grid_road_network(8, 8, num_qualities=3, seed=0)
        assert set(q for _, _, q in g.edges()) <= {1.0, 2.0, 3.0}

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            grid_road_network(0, 5)


class TestWeightedGridRoadNetwork:
    def test_topology_matches_unweighted(self):
        from repro.graph.generators import weighted_grid_road_network

        base = grid_road_network(6, 6, seed=4)
        weighted = weighted_grid_road_network(6, 6, seed=4)
        assert weighted.num_vertices == base.num_vertices
        assert weighted.num_edges == base.num_edges
        for u, v, quality in base.edges():
            length, w_quality = weighted.edge(u, v)
            assert w_quality == quality
            assert 0.5 <= length <= 3.0

    def test_length_range_configurable(self):
        from repro.graph.generators import weighted_grid_road_network

        weighted = weighted_grid_road_network(
            5, 5, seed=1, min_length=2.0, max_length=2.0
        )
        assert all(length == 2.0 for _, _, length, _ in weighted.edges())

    def test_bad_length_range_rejected(self):
        from repro.graph.generators import weighted_grid_road_network

        with pytest.raises(ValueError):
            weighted_grid_road_network(4, 4, min_length=0.0)
        with pytest.raises(ValueError):
            weighted_grid_road_network(4, 4, min_length=3.0, max_length=1.0)

    def test_weighted_index_on_generated_network(self):
        from repro.core.weighted import WeightedWCIndex, constrained_dijkstra
        from repro.graph.generators import weighted_grid_road_network

        g = weighted_grid_road_network(5, 5, seed=2, num_qualities=3)
        index = WeightedWCIndex(g)
        for s in range(0, g.num_vertices, 6):
            for t in range(0, g.num_vertices, 5):
                for w in (1.0, 2.0, 3.0):
                    # approx: the hub split sums the two halves in a
                    # different order than sequential Dijkstra.
                    assert index.distance(s, t, w) == pytest.approx(
                        constrained_dijkstra(g, s, t, w)
                    )


class TestScaleFreeNetwork:
    def test_size_and_determinism(self):
        a = scale_free_network(100, 3, seed=9)
        b = scale_free_network(100, 3, seed=9)
        assert a == b
        assert a.num_vertices == 100

    def test_is_connected(self):
        g = scale_free_network(200, 2, seed=4)
        assert is_connected(g)

    def test_hub_formation(self):
        g = scale_free_network(300, 3, seed=1)
        degrees = sorted(g.degrees(), reverse=True)
        # Preferential attachment: the top hub dwarfs the median degree.
        assert degrees[0] >= 4 * degrees[len(degrees) // 2]

    def test_small_diameter(self):
        g = scale_free_network(300, 3, seed=2)
        assert double_sweep_diameter_estimate(g) <= 10

    def test_single_vertex(self):
        g = scale_free_network(1, 3, seed=0)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            scale_free_network(0, 3)
        with pytest.raises(ValueError):
            scale_free_network(10, 0)


class TestWattsStrogatz:
    def test_size_and_determinism(self):
        from repro.graph.generators import watts_strogatz

        a = watts_strogatz(50, 4, 0.1, seed=1)
        b = watts_strogatz(50, 4, 0.1, seed=1)
        assert a == b
        assert a.num_vertices == 50

    def test_zero_rewire_is_ring_lattice(self):
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(20, 4, 0.0, seed=0)
        assert g.num_edges == 40  # n * k / 2
        assert all(g.degree(v) == 4 for v in g.vertices())
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_rewiring_shrinks_diameter(self):
        from repro.graph.generators import watts_strogatz

        lattice = watts_strogatz(200, 4, 0.0, seed=3)
        rewired = watts_strogatz(200, 4, 0.3, seed=3)
        assert double_sweep_diameter_estimate(
            rewired
        ) < double_sweep_diameter_estimate(lattice)

    def test_parameter_validation(self):
        from repro.graph.generators import watts_strogatz

        with pytest.raises(ValueError):
            watts_strogatz(2, 4)
        with pytest.raises(ValueError):
            watts_strogatz(10, 3)  # odd neighbor count
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, 1.5)

    def test_index_correct_on_small_world(self):
        from repro.baselines.online import ConstrainedBFS
        from repro.core import build_wc_index_plus
        from repro.graph.generators import watts_strogatz

        g = watts_strogatz(30, 4, 0.2, num_qualities=3, seed=5)
        index = build_wc_index_plus(g)
        oracle = ConstrainedBFS(g)
        for w in (1.0, 2.0, 3.0):
            for s in range(0, 30, 5):
                truth = oracle.single_source(s, w)
                for t in range(30):
                    assert index.distance(s, t, w) == truth[t]


class TestRandomGraphs:
    def test_erdos_renyi_probability_extremes(self):
        empty = erdos_renyi(10, 0.0, seed=0)
        full = erdos_renyi(10, 1.0, seed=0)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_erdos_renyi_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(12, 20, seed=3)
        assert g.num_edges == 20

    def test_gnm_rejects_overfull(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 7)

    def test_gnm_determinism(self):
        assert gnm_random_graph(10, 15, seed=8) == gnm_random_graph(10, 15, seed=8)


class TestShapes:
    def test_path_graph(self):
        g = path_graph(4, [1.0, 2.0, 3.0])
        assert g.num_edges == 3
        assert g.quality(1, 2) == 2.0

    def test_cycle_graph(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_complete_graph(self):
        g = complete_graph(6, quality=2.0)
        assert g.num_edges == 15
        assert all(q == 2.0 for _, _, q in g.edges())

    def test_star_graph(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.num_vertices == 8


class TestSamplers:
    def test_uniform_sampler_range(self):
        import random

        sampler = uniform_quality_sampler(4)
        rng = random.Random(0)
        values = {sampler(rng) for _ in range(200)}
        assert values == {1.0, 2.0, 3.0, 4.0}

    def test_uniform_sampler_rejects_zero(self):
        with pytest.raises(ValueError):
            uniform_quality_sampler(0)

    def test_ratings_sampler_five_stars(self):
        import random

        sampler = ratings_quality_sampler()
        rng = random.Random(0)
        values = {sampler(rng) for _ in range(500)}
        assert values == {1.0, 2.0, 3.0, 4.0, 5.0}


class TestComponents:
    def test_largest_connected_component(self):
        from repro.graph.graph import Graph

        g = Graph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        lcc = largest_connected_component(g)
        assert lcc.num_vertices == 3
        assert lcc.num_edges == 2
        assert is_connected(lcc)

    def test_is_connected_trivial(self):
        from repro.graph.graph import Graph

        assert is_connected(Graph(0))
        assert is_connected(Graph(1))
        assert not is_connected(Graph(2))


class TestOrientedCopy:
    def test_all_two_way_at_prob_zero(self):
        from repro.graph.generators import gnm_random_graph, oriented_copy

        base = gnm_random_graph(10, 20, seed=2)
        digraph = oriented_copy(base, one_way_prob=0.0, seed=2)
        assert digraph.num_vertices == base.num_vertices
        for u, v, quality in base.edges():
            assert digraph.quality(u, v) == quality
            assert digraph.quality(v, u) == quality

    def test_one_way_at_prob_one(self):
        from repro.graph.generators import gnm_random_graph, oriented_copy

        base = gnm_random_graph(10, 20, seed=2)
        digraph = oriented_copy(base, one_way_prob=1.0, seed=2)
        assert digraph.num_edges == base.num_edges
        for u, v, _ in base.edges():
            assert digraph.has_edge(u, v) != digraph.has_edge(v, u)

    def test_deterministic(self):
        from repro.graph.generators import gnm_random_graph, oriented_copy

        base = gnm_random_graph(10, 20, seed=2)
        a = oriented_copy(base, seed=7)
        b = oriented_copy(base, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_bad_prob_rejected(self):
        from repro.graph.generators import gnm_random_graph, oriented_copy

        with pytest.raises(ValueError):
            oriented_copy(gnm_random_graph(4, 3, seed=0), one_way_prob=1.5)


class TestWithRandomLengths:
    def test_qualities_preserved_lengths_bounded(self):
        from repro.graph.generators import gnm_random_graph, with_random_lengths

        base = gnm_random_graph(10, 20, seed=3)
        weighted = with_random_lengths(
            base, min_length=0.5, max_length=3.0, seed=3
        )
        assert weighted.num_edges == base.num_edges
        for u, v, length, quality in weighted.edges():
            assert base.quality(u, v) == quality
            assert 0.5 <= length <= 3.0

    def test_matches_weighted_grid_seeding(self):
        # weighted_grid_road_network delegates here: same seed, same graph.
        from repro.graph.generators import (
            grid_road_network,
            weighted_grid_road_network,
            with_random_lengths,
        )

        direct = weighted_grid_road_network(5, 5, seed=9)
        via_helper = with_random_lengths(grid_road_network(5, 5, seed=9), seed=9)
        assert sorted(direct.edges()) == sorted(via_helper.edges())

    def test_bad_lengths_rejected(self):
        from repro.graph.generators import gnm_random_graph, with_random_lengths

        with pytest.raises(ValueError):
            with_random_lengths(gnm_random_graph(4, 3, seed=0), min_length=0.0)
