"""Tests for quality-level partitioning."""

import pytest

from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph
from repro.graph.partition import QualityPartition


@pytest.fixture
def graph():
    return Graph(
        5,
        [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 2.0),
            (3, 4, 5.0),
            (0, 4, 1.0),
        ],
    )


class TestPartitionStructure:
    def test_thresholds_sorted_distinct(self, graph):
        p = QualityPartition(graph)
        assert p.thresholds == [1.0, 2.0, 5.0]
        assert p.num_levels == 3
        assert len(p) == 3

    def test_level_zero_is_full_graph(self, graph):
        p = QualityPartition(graph)
        assert p.subgraph_at_level(0) == graph

    def test_each_level_filters(self, graph):
        p = QualityPartition(graph)
        assert p.subgraph_at_level(1).num_edges == 3  # quality >= 2
        assert p.subgraph_at_level(2).num_edges == 1  # quality >= 5

    def test_total_edges_blowup(self, graph):
        p = QualityPartition(graph)
        assert p.total_edges() == 5 + 3 + 1


class TestLevelSelection:
    def test_exact_threshold(self, graph):
        p = QualityPartition(graph)
        assert p.level_for(2.0) == 1
        assert p.subgraph_for(2.0).num_edges == 3

    def test_between_thresholds_rounds_up(self, graph):
        p = QualityPartition(graph)
        assert p.level_for(1.5) == 1
        assert p.level_for(2.5) == 2

    def test_below_minimum_maps_to_level_zero(self, graph):
        p = QualityPartition(graph)
        assert p.level_for(0.1) == 0
        assert p.level_for(1.0) == 0

    def test_above_maximum_is_none(self, graph):
        p = QualityPartition(graph)
        assert p.level_for(5.1) is None
        assert p.subgraph_for(99.0) is None

    def test_selection_semantics_match_filtering(self):
        g = gnm_random_graph(12, 30, num_qualities=4, seed=9)
        p = QualityPartition(g)
        for w in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0):
            expected = g.subgraph_at_least(w)
            got = p.subgraph_for(w)
            assert got is not None
            assert got == expected


class TestEdgeCases:
    def test_empty_graph(self):
        p = QualityPartition(Graph(3))
        assert p.num_levels == 0
        assert p.level_for(1.0) is None

    def test_repr(self, graph):
        text = repr(QualityPartition(graph))
        assert "levels=3" in text
