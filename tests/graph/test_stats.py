"""Tests for graph statistics and memory accounting."""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    complete_graph,
    gnm_random_graph,
    grid_road_network,
    path_graph,
    scale_free_network,
)
from repro.graph.graph import Graph
from repro.graph.stats import (
    connected_component_sizes,
    degree_histogram,
    double_sweep_diameter_estimate,
    graph_storage_bytes,
    quality_histogram,
    summarize,
)


class TestSummarize:
    def test_fields(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 2.0)])
        s = summarize(g, "toy")
        assert s.name == "toy"
        assert s.num_vertices == 4
        assert s.num_edges == 3
        assert s.num_distinct_qualities == 2
        assert s.avg_degree == 1.5
        assert s.max_degree == 2
        assert s.storage_bytes == CSRGraph(g).nbytes()
        assert s.storage_mib() == s.storage_bytes / (1024 * 1024)

    def test_empty_graph(self):
        s = summarize(Graph(0))
        assert s.avg_degree == 0.0
        assert s.max_degree == 0

    def test_storage_bytes_matches_csr(self):
        g = gnm_random_graph(30, 60, seed=1)
        assert graph_storage_bytes(g) == CSRGraph(g).nbytes()


class TestHistograms:
    def test_degree_histogram(self):
        g = path_graph(4)  # degrees 1,2,2,1
        assert degree_histogram(g) == {1: 2, 2: 2}

    def test_quality_histogram(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 3.0)])
        assert quality_histogram(g) == {1.0: 2, 3.0: 1}


class TestDiameter:
    def test_path_graph_exact(self):
        assert double_sweep_diameter_estimate(path_graph(10)) == 9

    def test_complete_graph(self):
        assert double_sweep_diameter_estimate(complete_graph(5)) == 1

    def test_empty(self):
        assert double_sweep_diameter_estimate(Graph(0)) == 0

    def test_road_larger_than_social(self):
        road = grid_road_network(16, 16, seed=0)
        social = scale_free_network(256, 3, seed=0)
        assert double_sweep_diameter_estimate(road) > double_sweep_diameter_estimate(
            social
        )


class TestComponents:
    def test_sizes_sorted(self):
        g = Graph(7, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        assert connected_component_sizes(g) == [3, 2, 1, 1]

    def test_connected_graph_single_component(self):
        g = path_graph(9)
        assert connected_component_sizes(g) == [9]
