"""Tests for MDE tree decomposition."""

from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    grid_road_network,
    path_graph,
    star_graph,
)
from repro.graph.treedec import (
    is_valid_tree_decomposition,
    mde_elimination_order,
    mde_tree_decomposition,
    tree_decomposition_order,
    treewidth_upper_bound,
)


class TestKnownWidths:
    def test_path_has_width_one(self):
        assert treewidth_upper_bound(path_graph(10)) == 1

    def test_star_has_width_one(self):
        assert treewidth_upper_bound(star_graph(8)) == 1

    def test_cycle_has_width_two(self):
        assert treewidth_upper_bound(cycle_graph(12)) == 2

    def test_complete_graph_width(self):
        # K_n has treewidth n-1; MDE is exact here.
        assert treewidth_upper_bound(complete_graph(6)) == 5

    def test_grid_width_reasonable(self):
        # An r x c grid has treewidth min(r, c); MDE should stay close.
        g = grid_road_network(6, 12, seed=0, perforation=0.0, diagonal_prob=0.0)
        assert 6 <= treewidth_upper_bound(g) + 1 <= 14

    def test_single_vertex(self):
        from repro.graph.graph import Graph

        td = mde_tree_decomposition(Graph(1))
        assert td.width == 0
        assert td.elimination_order == [0]


class TestDecompositionValidity:
    def test_valid_on_random_graphs(self):
        for trial in range(10):
            n = 6 + trial
            g = gnm_random_graph(n, min(2 * n, n * (n - 1) // 2), seed=trial)
            td = mde_tree_decomposition(g)
            assert is_valid_tree_decomposition(g, td), f"trial {trial}"

    def test_valid_on_road_grid(self):
        g = grid_road_network(7, 7, seed=1)
        td = mde_tree_decomposition(g)
        assert is_valid_tree_decomposition(g, td)

    def test_valid_on_disconnected(self):
        from repro.graph.graph import Graph

        g = Graph(6, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        td = mde_tree_decomposition(g)
        assert is_valid_tree_decomposition(g, td)
        assert len(td.roots()) >= 2  # forest: one root per component (5 isolated)


class TestOrdering:
    def test_elimination_order_is_permutation(self):
        g = gnm_random_graph(20, 40, seed=2)
        order = mde_elimination_order(g)
        assert sorted(order) == list(range(20))

    def test_hub_order_reverses_elimination(self):
        g = gnm_random_graph(15, 25, seed=3)
        td = mde_tree_decomposition(g)
        assert td.hub_order() == list(reversed(td.elimination_order))
        assert tree_decomposition_order(g) == td.hub_order()

    def test_min_degree_first_on_star(self):
        # The hub (degree 6) cannot be eliminated until enough leaves have
        # gone for its degree to reach the minimum (ties then go by id).
        g = star_graph(6)
        td = mde_tree_decomposition(g)
        assert td.elimination_order[0] != 0
        assert td.position(0) >= 5

    def test_deterministic(self):
        g = gnm_random_graph(25, 60, seed=4)
        assert mde_elimination_order(g) == mde_elimination_order(g)


class TestTreeStructure:
    def test_positions(self):
        g = path_graph(5)
        td = mde_tree_decomposition(g)
        for i, v in enumerate(td.elimination_order):
            assert td.position(v) == i

    def test_height_bounds(self):
        g = path_graph(16)
        td = mde_tree_decomposition(g)
        assert 1 <= td.height() <= 16

    def test_bag_of(self):
        g = path_graph(4)
        td = mde_tree_decomposition(g)
        for v in range(4):
            assert v in td.bag_of(v)

    def test_parent_is_later_eliminated(self):
        g = gnm_random_graph(18, 36, seed=5)
        td = mde_tree_decomposition(g)
        for v in range(18):
            p = td.parent[v]
            if p is not None:
                assert td.position(p) > td.position(v)

    def test_repr(self):
        g = path_graph(5)
        assert "width=1" in repr(mde_tree_decomposition(g))
