"""Tests for the CSR snapshot."""

from repro.baselines.online import ConstrainedBFS
from repro.graph.csr import CSRGraph, bfs_distances
from repro.graph.generators import gnm_random_graph, grid_road_network
from repro.graph.graph import Graph


class TestCSRStructure:
    def test_round_trip(self):
        g = gnm_random_graph(20, 40, seed=7)
        assert CSRGraph(g).to_graph() == g

    def test_degrees_match(self):
        g = gnm_random_graph(15, 25, seed=1)
        csr = CSRGraph(g)
        for v in g.vertices():
            assert csr.degree(v) == g.degree(v)

    def test_neighbors_match(self):
        g = gnm_random_graph(15, 25, seed=2)
        csr = CSRGraph(g)
        for v in g.vertices():
            assert sorted(csr.neighbors(v)) == sorted(g.neighbors(v))

    def test_counts(self):
        g = gnm_random_graph(10, 13, seed=3)
        csr = CSRGraph(g)
        assert csr.num_vertices == 10
        assert csr.num_edges == 13
        assert len(csr.targets) == 26  # each undirected edge twice

    def test_neighbor_slice(self):
        g = Graph(3, [(0, 1, 1.0), (0, 2, 2.0)])
        csr = CSRGraph(g)
        start, stop = csr.neighbor_slice(0)
        assert stop - start == 2

    def test_empty_graph(self):
        csr = CSRGraph(Graph(0))
        assert csr.num_vertices == 0
        assert csr.nbytes() > 0  # the offsets sentinel


class TestCSRMemory:
    def test_typecodes_are_platform_independent(self):
        # Regression: array("l") is 4 bytes on some platforms and 8 on
        # others, which made nbytes() — the paper's size accounting —
        # machine-dependent.
        csr = CSRGraph(gnm_random_graph(10, 15, seed=4))
        assert csr.offsets.typecode == "q" and csr.offsets.itemsize == 8
        assert csr.targets.typecode == "i" and csr.targets.itemsize == 4
        assert csr.qualities.typecode == "d" and csr.qualities.itemsize == 8

    def test_nbytes_deterministic_formula(self):
        g = gnm_random_graph(10, 15, seed=4)
        csr = CSRGraph(g)
        # 8 bytes per offset, 4 per target, 8 per quality — exactly.
        assert csr.nbytes() == 8 * 11 + 4 * 30 + 8 * 30

    def test_nbytes_grows_with_edges(self):
        small = CSRGraph(gnm_random_graph(20, 10, seed=0))
        large = CSRGraph(gnm_random_graph(20, 80, seed=0))
        assert large.nbytes() > small.nbytes()

    def test_nbytes_formula(self):
        g = gnm_random_graph(10, 15, seed=4)
        csr = CSRGraph(g)
        expected = (
            csr.offsets.itemsize * 11
            + csr.targets.itemsize * 30
            + csr.qualities.itemsize * 30
        )
        assert csr.nbytes() == expected


class TestCSRBFS:
    def test_matches_constrained_bfs(self):
        g = grid_road_network(6, 6, num_qualities=3, seed=5)
        csr = CSRGraph(g)
        oracle = ConstrainedBFS(g)
        for w in (1.0, 2.0, 3.0, 4.0):
            for s in range(0, g.num_vertices, 7):
                assert bfs_distances(csr, s, w) == oracle.single_source(s, w)

    def test_unconstrained_default(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 5.0)])
        assert bfs_distances(CSRGraph(g), 0) == [0.0, 1.0, 2.0]

    def test_unreachable_is_inf(self):
        g = Graph(3, [(0, 1, 1.0)])
        dist = bfs_distances(CSRGraph(g), 0)
        assert dist[2] == float("inf")
