"""Unit tests for the directed quality graph."""

import pytest

from repro.graph.digraph import DiGraph


class TestDiGraphBasics:
    def test_arcs_are_directional(self):
        g = DiGraph(2, [(0, 1, 3.0)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 0
        assert g.in_degree(1) == 1

    def test_successors_and_predecessors(self):
        g = DiGraph(3, [(0, 1, 1.0), (2, 1, 2.0)])
        assert list(g.successors(0)) == [(1, 1.0)]
        assert sorted(g.predecessors(1)) == [(0, 1.0), (2, 2.0)]

    def test_parallel_arc_keeps_max(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 4.0)
        g.add_edge(0, 1, 2.0)
        assert g.num_edges == 1
        assert g.quality(0, 1) == 4.0

    def test_antiparallel_arcs_are_distinct(self):
        g = DiGraph(2, [(0, 1, 1.0), (1, 0, 2.0)])
        assert g.num_edges == 2
        assert g.quality(0, 1) == 1.0
        assert g.quality(1, 0) == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            DiGraph(1, [(0, 0, 1.0)])

    def test_bad_quality_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            DiGraph(2, [(0, 1, 0.0)])

    def test_total_degrees(self):
        g = DiGraph(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        assert g.total_degrees() == [2, 2, 2]


class TestDiGraphDerivation:
    def test_subgraph_at_least(self):
        g = DiGraph(3, [(0, 1, 1.0), (1, 2, 3.0)])
        sub = g.subgraph_at_least(2.0)
        assert not sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)

    def test_to_undirected_max_quality_wins(self):
        g = DiGraph(2, [(0, 1, 1.0), (1, 0, 5.0)])
        und = g.to_undirected()
        assert und.num_edges == 1
        assert und.quality(0, 1) == 5.0

    def test_reversed(self):
        g = DiGraph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        r = g.reversed()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)
        assert r.quality(1, 0) == 2.0

    def test_distinct_qualities(self):
        g = DiGraph(3, [(0, 1, 2.0), (1, 2, 2.0), (2, 0, 7.0)])
        assert g.distinct_qualities() == [2.0, 7.0]


class TestDiGraphMutation:
    def test_remove_edge(self):
        g = DiGraph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.remove_edge(0, 1) == 2.0
        assert not g.has_edge(0, 1)
        assert not any(u == 0 for u, _ in g.predecessors(1))
        assert g.num_edges == 1

    def test_remove_edge_is_one_directional(self):
        g = DiGraph(2, [(0, 1, 2.0), (1, 0, 3.0)])
        g.remove_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = DiGraph(2, [(0, 1, 2.0)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 0)

    def test_copy_is_independent(self):
        g = DiGraph(3, [(0, 1, 2.0), (1, 2, 3.0)])
        clone = g.copy()
        clone.remove_edge(0, 1)
        assert g.has_edge(0, 1)
        assert clone.num_edges == 1
