"""Tests for Brandes betweenness centrality and the derived ordering."""

import pytest

from repro.graph.betweenness import betweenness_centrality, betweenness_order
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph


class TestExactValues:
    def test_path_graph(self):
        # Path 0-1-2: the middle vertex covers exactly one pair.
        assert betweenness_centrality(path_graph(3)) == [0.0, 1.0, 0.0]

    def test_longer_path(self):
        # Path of 5: interior vertex v covers (v-left pairs) x (right).
        c = betweenness_centrality(path_graph(5))
        assert c == [0.0, 3.0, 4.0, 3.0, 0.0]

    def test_star_center_covers_all_pairs(self):
        k = 6
        c = betweenness_centrality(star_graph(k))
        assert c[0] == k * (k - 1) / 2  # all leaf pairs
        assert all(value == 0.0 for value in c[1:])

    def test_complete_graph_zero(self):
        assert betweenness_centrality(complete_graph(5)) == [0.0] * 5

    def test_cycle_symmetry(self):
        c = betweenness_centrality(cycle_graph(6))
        assert len(set(round(x, 9) for x in c)) == 1  # all equal

    def test_split_paths_counted_fractionally(self):
        # Diamond: 0-1, 0-2, 1-3, 2-3.  Pair (0,3) splits across 1 and 2;
        # pair (1,2) splits across 0 and 3 — every vertex covers half a
        # pair.
        g = Graph(4, [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)])
        c = betweenness_centrality(g)
        assert c == pytest.approx([0.5, 0.5, 0.5, 0.5])

    def test_empty_graph(self):
        assert betweenness_centrality(Graph(0)) == []


class TestSampling:
    def test_full_sample_equals_exact(self):
        g = gnm_random_graph(15, 30, seed=2)
        exact = betweenness_centrality(g)
        sampled_all = betweenness_centrality(g, sample_size=15)
        assert sampled_all == pytest.approx(exact)

    def test_sampling_deterministic(self):
        g = gnm_random_graph(30, 60, seed=3)
        a = betweenness_centrality(g, sample_size=8, seed=5)
        b = betweenness_centrality(g, sample_size=8, seed=5)
        assert a == b

    def test_sampling_approximates(self):
        g = gnm_random_graph(40, 120, seed=4)
        exact = betweenness_centrality(g)
        approx = betweenness_centrality(g, sample_size=20, seed=1)
        # The top-ranked exact vertex should rank highly under sampling.
        top_exact = max(range(40), key=lambda v: exact[v])
        rank = sorted(range(40), key=lambda v: -approx[v]).index(top_exact)
        assert rank < 10


class TestOrdering:
    def test_order_is_permutation(self):
        g = gnm_random_graph(20, 50, seed=6)
        assert sorted(betweenness_order(g)) == list(range(20))

    def test_star_center_first(self):
        assert betweenness_order(star_graph(8), sample_size=None)[0] == 0

    def test_usable_as_index_ordering(self):
        from repro.baselines.online import ConstrainedBFS
        from repro.core import WCIndexBuilder

        g = gnm_random_graph(14, 30, num_qualities=3, seed=7)
        index = WCIndexBuilder(g, "betweenness").build()
        oracle = ConstrainedBFS(g)
        for w in (1.0, 2.0, 3.0):
            for s in range(14):
                truth = oracle.single_source(s, w)
                for t in range(14):
                    assert index.distance(s, t, w) == truth[t]
