"""Shared helpers for the test suite."""

from __future__ import annotations

import random
from typing import List

from repro.graph.generators import gnm_random_graph
from repro.graph.graph import Graph

INF = float("inf")


def random_graph(trial: int, max_n: int = 16, num_qualities: int = 4) -> Graph:
    """Deterministic pseudo-random graph for loop-style tests."""
    rng = random.Random(trial)
    n = rng.randint(2, max_n)
    max_edges = n * (n - 1) // 2
    m = rng.randint(0, min(3 * n, max_edges))
    return gnm_random_graph(n, m, num_qualities=num_qualities, seed=trial)


def thresholds_for(graph: Graph) -> List[float]:
    """Interesting constraint values: each distinct quality, one below the
    minimum, midpoints between adjacent values, one above the maximum."""
    qualities = graph.distinct_qualities()
    if not qualities:
        return [1.0]
    values = list(qualities)
    values.append(qualities[0] - 0.5)
    values.append(qualities[-1] + 1.0)
    for a, b in zip(qualities, qualities[1:]):
        values.append((a + b) / 2.0)
    return values
