"""End-to-end integration tests: the full library pipeline on realistic
mid-size graphs, crossing module boundaries the unit tests keep apart."""

import io

import pytest

from repro import (
    ConstrainedBFS,
    NaivePerQualityIndex,
    PartitionedBFS,
    build_wc_index_plus,
)
from repro.core import (
    DynamicWCIndex,
    WCIndexBuilder,
    WCPathIndex,
    collect_statistics,
    distance_profile,
    load_index,
    profile_distance,
    save_index,
)
from repro.core.paths import is_valid_w_path, path_length
from repro.graph.generators import grid_road_network, scale_free_network
from repro.graph.io import from_edge_list_string, to_edge_list_string
from repro.workloads.queries import random_queries

INF = float("inf")


@pytest.fixture(scope="module")
def road():
    return grid_road_network(9, 11, num_qualities=4, seed=17)


@pytest.fixture(scope="module")
def social():
    return scale_free_network(120, 3, num_qualities=5, seed=17)


class TestFullPipeline:
    """graph file -> index -> serialize -> reload -> query/path/profile."""

    def test_road_pipeline(self, road, tmp_path):
        # Serialize the graph, read it back, index it.
        graph = from_edge_list_string(to_edge_list_string(road))
        assert graph == road

        index = build_wc_index_plus(graph)
        path_index = WCPathIndex.build(graph)
        oracle = ConstrainedBFS(graph)

        index_path = tmp_path / "road.wci.gz"
        save_index(index, index_path)
        served = load_index(index_path)

        workload = random_queries(graph, 150, seed=3)
        answers = served.distance_many(workload)
        for (s, t, w), answer in zip(workload, answers):
            assert answer == oracle.distance(s, t, w)
            route = path_index.path(s, t, w)
            if answer == INF:
                assert route is None
            else:
                assert path_length(route) == answer
                assert len(route) == 1 or is_valid_w_path(graph, route, w)

    def test_social_pipeline_profiles(self, social):
        index = build_wc_index_plus(social)
        oracle = ConstrainedBFS(social)
        for s, t, _ in random_queries(social, 40, seed=9):
            profile = distance_profile(index, s, t)
            for w in social.distinct_qualities():
                assert profile_distance(profile, w) == oracle.distance(s, t, w)

    def test_statistics_consistent_with_index(self, social):
        index = build_wc_index_plus(social)
        stats = collect_statistics(index)
        assert stats.entry_count == index.entry_count()
        assert stats.max_label_size == index.max_label_size()


class TestEnginesAgreeAtScale:
    def test_all_engines_same_answers_on_road(self, road):
        engines = [
            build_wc_index_plus(road, "treedec"),
            build_wc_index_plus(road, "degree"),
            NaivePerQualityIndex(road),
            PartitionedBFS(road),
        ]
        oracle = ConstrainedBFS(road)
        for s, t, w in random_queries(road, 120, seed=4):
            expected = oracle.distance(s, t, w)
            for engine in engines:
                assert engine.distance(s, t, w) == expected

    def test_kernels_agree_on_social(self, social):
        index = WCIndexBuilder(social, "hybrid").build()
        for s, t, w in random_queries(social, 120, seed=5):
            linear = index.distance_with(s, t, w, "linear")
            assert index.distance_with(s, t, w, "naive") == linear
            assert index.distance_with(s, t, w, "binary") == linear


class TestDynamicLifecycle:
    def test_evolving_graph_stays_exact(self):
        # A graph living through growth, quality changes and pruning.
        graph = grid_road_network(5, 5, num_qualities=3, seed=21)
        dyn = DynamicWCIndex(graph.copy())
        n = graph.num_vertices

        # Growth: add shortcuts.
        dyn.insert_edges([(0, n - 1, 2.0), (3, n - 4, 3.0)])
        # Maintenance: an edge gets upgraded, another downgraded.
        some_edges = list(dyn.graph.edges())[:2]
        u, v, q = some_edges[0]
        dyn.change_quality(u, v, q + 1.0)
        u, v, q = some_edges[1]
        if q > 1.0:
            dyn.change_quality(u, v, 1.0)
        # Decay: remove a batch.
        removable = [tuple(e[:2]) for e in list(dyn.graph.edges())[5:7]]
        dyn.remove_edges(removable)

        oracle = ConstrainedBFS(dyn.graph)
        for s, t, w in random_queries(dyn.graph, 150, seed=6):
            assert dyn.distance(s, t, w) == oracle.distance(s, t, w)

    def test_serialized_dynamic_index_serves_correctly(self, tmp_path):
        graph = scale_free_network(60, 3, num_qualities=4, seed=8)
        dyn = DynamicWCIndex(graph.copy())
        dyn.insert_edge(0, 59, 4.0)
        buffer = io.StringIO()
        save_index(dyn.index, buffer)
        buffer.seek(0)
        served = load_index(buffer)
        oracle = ConstrainedBFS(dyn.graph)
        for s, t, w in random_queries(dyn.graph, 80, seed=7):
            assert served.distance(s, t, w) == oracle.distance(s, t, w)


class TestHarnessIntegration:
    def test_experiment_runner_end_to_end(self):
        from repro.bench.experiments import exp_indexing
        from repro.bench.reporting import format_markdown, format_table

        suite = {
            "tiny-road": grid_road_network(5, 6, seed=1),
            "tiny-social": scale_free_network(40, 3, seed=1),
        }
        tables = exp_indexing(suite, "it", "integration")
        for table in tables.values():
            text = format_table(table)
            assert "tiny-road" in text and "tiny-social" in text
            assert "| tiny-road |" in format_markdown(table)

    def test_chart_rendering_of_real_experiment(self):
        from repro.bench.charts import render_chart
        from repro.bench.experiments import exp_table5

        chart = render_chart(exp_table5(scale=0.1))
        assert "#" in chart and "storage" in chart
