"""End-to-end tests for the ``python -m repro`` command line interface."""

import pytest

from repro.__main__ import main
from repro.graph.generators import paper_figure3
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "net.edges"
    write_edge_list(paper_figure3(), path)
    return path


@pytest.fixture
def index_file(graph_file, tmp_path):
    path = tmp_path / "net.wci"
    code = main(
        ["build", "--graph", str(graph_file), "--out", str(path),
         "--ordering", "identity"]
    )
    assert code == 0
    return path


class TestBuild:
    def test_build_reports_entries(self, graph_file, tmp_path, capsys):
        out = tmp_path / "x.wci"
        assert main(["build", "--graph", str(graph_file), "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "entries" in text and "6 vertices" in text
        assert out.exists()

    def test_build_gzip(self, graph_file, tmp_path):
        out = tmp_path / "x.wci.gz"
        assert main(["build", "--graph", str(graph_file), "--out", str(out)]) == 0
        assert out.read_bytes()[:2] == b"\x1f\x8b"

    def test_build_with_paths(self, graph_file, tmp_path, capsys):
        out = tmp_path / "p.wci"
        assert (
            main(
                ["build", "--graph", str(graph_file), "--out", str(out), "--paths"]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["stats", "--index", str(out)]) == 0
        assert "tracks parents:  True" in capsys.readouterr().out


class TestBuildFromDataset:
    def test_build_named_dataset(self, tmp_path, capsys):
        out = tmp_path / "ny.wci"
        assert main(["build", "--dataset", "NY", "--out", str(out)]) == 0
        assert out.exists()
        assert "entries" in capsys.readouterr().out

    def test_graph_and_dataset_mutually_exclusive(self, graph_file, tmp_path):
        out = tmp_path / "x.wci"
        with pytest.raises(SystemExit, match="exactly one"):
            main(
                ["build", "--graph", str(graph_file), "--dataset", "NY",
                 "--out", str(out)]
            )
        with pytest.raises(SystemExit, match="exactly one"):
            main(["build", "--out", str(out)])

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown dataset"):
            main(["build", "--dataset", "NOPE", "--out", str(tmp_path / "x")])


class TestQuery:
    def test_single_query(self, index_file, capsys):
        assert main(["query", "--index", str(index_file), "2", "5", "2.0"]) == 0
        assert "2 5 2 -> 2" in capsys.readouterr().out

    def test_infeasible_query(self, index_file, capsys):
        assert main(["query", "--index", str(index_file), "0", "5", "99"]) == 0
        assert "INF" in capsys.readouterr().out

    def test_stdin_queries(self, index_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("2 5 2.0\n0 4 1.0\n"))
        assert main(["query", "--index", str(index_file), "-"]) == 0
        out = capsys.readouterr().out
        assert "2 5 2 -> 2" in out
        assert "0 4 1 -> 2" in out

    def test_malformed_query_raises(self, index_file):
        with pytest.raises(ValueError, match="expected"):
            main(["query", "--index", str(index_file), "1", "2"])


class TestFrozenEngine:
    @pytest.fixture
    def binary_index_file(self, graph_file, tmp_path):
        path = tmp_path / "net.wcxb"
        code = main(
            ["build", "--graph", str(graph_file), "--out", str(path),
             "--ordering", "identity"]
        )
        assert code == 0
        return path

    def test_build_writes_binary_magic(self, binary_index_file):
        assert binary_index_file.read_bytes()[:4] == b"WCXB"

    def test_query_frozen_from_wcxb(self, binary_index_file, capsys):
        # The acceptance path: a .wcxb built and saved by the CLI answers
        # queries through the frozen engine.
        assert (
            main(
                ["query", "--engine", "frozen", "--index",
                 str(binary_index_file), "2", "5", "2.0"]
            )
            == 0
        )
        assert "2 5 2 -> 2" in capsys.readouterr().out

    def test_query_list_engine_from_wcxb(self, binary_index_file, capsys):
        assert (
            main(["query", "--index", str(binary_index_file), "2", "5", "2.0"])
            == 0
        )
        assert "2 5 2 -> 2" in capsys.readouterr().out

    def test_query_frozen_from_text_index(self, index_file, capsys):
        assert (
            main(
                ["query", "--engine", "frozen", "--index", str(index_file),
                 "0", "4", "1.0"]
            )
            == 0
        )
        assert "0 4 1 -> 2" in capsys.readouterr().out

    def test_engines_agree_on_stdin_batch(
        self, index_file, binary_index_file, capsys, monkeypatch
    ):
        import io

        batch = "2 5 2.0\n0 4 1.0\n0 5 99\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(batch))
        assert main(["query", "--index", str(index_file), "-"]) == 0
        expected = capsys.readouterr().out
        monkeypatch.setattr("sys.stdin", io.StringIO(batch))
        assert (
            main(
                ["query", "--engine", "frozen", "--index",
                 str(binary_index_file), "-"]
            )
            == 0
        )
        assert capsys.readouterr().out == expected

    def test_build_engine_frozen_flag(self, graph_file, tmp_path, capsys):
        out = tmp_path / "f.wci"
        assert (
            main(
                ["build", "--graph", str(graph_file), "--out", str(out),
                 "--engine", "frozen"]
            )
            == 0
        )
        assert "entries" in capsys.readouterr().out
        # Frozen build saved through the text format stays loadable.
        assert main(["stats", "--index", str(out)]) == 0

    def test_stats_reports_frozen_bytes(self, binary_index_file, capsys):
        assert main(["stats", "--index", str(binary_index_file)]) == 0
        out = capsys.readouterr().out
        assert "frozen bytes:" in out
        assert "entries:         32" in out

    def test_stats_reports_format_and_sections(
        self, binary_index_file, capsys
    ):
        # The satellite: per-section byte sizes and the format version,
        # straight from the image's own offset table.
        assert main(["stats", "--index", str(binary_index_file)]) == 0
        out = capsys.readouterr().out
        assert "format:          wcxb v3 (undirected)" in out
        assert "sections:" in out
        for name in ("order", "offsets", "hubs", "dists", "quals"):
            assert f"  {name}" in out
        assert "image bytes:" in out

    def test_query_mmap_engine(self, binary_index_file, capsys):
        assert (
            main(
                ["query", "--engine", "mmap", "--index",
                 str(binary_index_file), "2", "5", "2.0"]
            )
            == 0
        )
        assert "2 5 2 -> 2" in capsys.readouterr().out

    def test_query_mmap_engine_needs_binary(self, index_file):
        with pytest.raises(SystemExit, match="wcxb"):
            main(
                ["query", "--engine", "mmap", "--index", str(index_file),
                 "2", "5", "2.0"]
            )


class TestKernelFlag:
    """The ``--kernel`` backend selector on the query/serve/stats
    paths: identical answers on every backend, fail-fast on an
    explicitly named unavailable one."""

    @pytest.fixture
    def binary_index_file(self, graph_file, tmp_path):
        path = tmp_path / "net.wcxb"
        assert main(
            ["build", "--graph", str(graph_file), "--out", str(path),
             "--ordering", "identity"]
        ) == 0
        return path

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        from repro.core import kernels

        monkeypatch.setattr(kernels, "_load_numpy", lambda: None)
        monkeypatch.setattr(kernels, "_INSTANCES", {})

    def test_query_kernels_answer_identically(
        self, binary_index_file, capsys
    ):
        from repro.core import available_backends

        outputs = set()
        for kernel in ("auto",) + available_backends():
            assert (
                main(
                    ["query", "--engine", "frozen", "--kernel", kernel,
                     "--index", str(binary_index_file), "2", "5", "2.0"]
                )
                == 0
            )
            outputs.add(capsys.readouterr().out)
        assert outputs == {"2 5 2 -> 2\n"}

    def test_mmap_engine_honors_kernel(self, binary_index_file, capsys):
        assert (
            main(
                ["query", "--engine", "mmap", "--kernel", "stdlib",
                 "--index", str(binary_index_file), "2", "5", "2.0"]
            )
            == 0
        )
        assert "2 5 2 -> 2" in capsys.readouterr().out

    def test_explicit_numpy_fails_fast_without_numpy(
        self, binary_index_file, no_numpy
    ):
        with pytest.raises(SystemExit, match="not available"):
            main(
                ["query", "--engine", "frozen", "--kernel", "numpy",
                 "--index", str(binary_index_file), "2", "5", "2.0"]
            )

    def test_auto_without_numpy_falls_back(
        self, binary_index_file, no_numpy, capsys
    ):
        assert (
            main(
                ["query", "--engine", "frozen", "--kernel", "auto",
                 "--index", str(binary_index_file), "2", "5", "2.0"]
            )
            == 0
        )
        assert "2 5 2 -> 2" in capsys.readouterr().out

    def test_serve_rejects_numpy_before_spawning(
        self, binary_index_file, no_numpy
    ):
        with pytest.raises(SystemExit, match="serve: .*not available"):
            main(
                ["serve", "--index", str(binary_index_file), "--kernel",
                 "numpy", "2", "5", "2.0"]
            )

    def test_serve_reports_kernel(self, binary_index_file, capsys):
        assert (
            main(
                ["serve", "--index", str(binary_index_file), "--workers",
                 "2", "--kernel", "stdlib", "2", "5", "2.0"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "2 5 2 -> 2" in captured.out
        assert "stdlib kernel" in captured.err

    def test_stats_reports_backend(self, binary_index_file, capsys):
        from repro.core import default_backend_name

        assert main(["stats", "--index", str(binary_index_file)]) == 0
        out = capsys.readouterr().out
        assert f"kernel backend:  {default_backend_name()}" in out
        assert "available: stdlib" in out


class TestServeCommand:
    @pytest.fixture
    def binary_index_file(self, graph_file, tmp_path):
        path = tmp_path / "net.wcxb"
        assert main(
            ["build", "--graph", str(graph_file), "--out", str(path),
             "--ordering", "identity"]
        ) == 0
        return path

    def test_serve_single_query(self, binary_index_file, capsys):
        assert (
            main(
                ["serve", "--index", str(binary_index_file),
                 "--workers", "2", "2", "5", "2.0"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "2 5 2 -> 2" in captured.out
        assert "2 workers" in captured.err

    def test_serve_stdin_batch_matches_query(
        self, binary_index_file, capsys, monkeypatch
    ):
        import io

        batch = "2 5 2.0\n0 4 1.0\n0 5 99\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(batch))
        assert main(["query", "--index", str(binary_index_file), "-"]) == 0
        expected = capsys.readouterr().out
        monkeypatch.setattr("sys.stdin", io.StringIO(batch))
        assert (
            main(
                ["serve", "--index", str(binary_index_file),
                 "--workers", "2", "-"]
            )
            == 0
        )
        assert capsys.readouterr().out == expected

    def test_serve_supervised_reports_health(
        self, binary_index_file, capsys
    ):
        assert (
            main(
                ["serve", "--index", str(binary_index_file),
                 "--workers", "2", "--supervise", "--query-timeout", "10",
                 "2", "5", "2.0"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "supervised" in captured.err
        assert "pool ok: 2/2 workers alive" in captured.err

    def test_serve_chaos_kill_round_trip(self, binary_index_file, capsys):
        """The CI self-test: a worker is SIGKILLed mid-workload and the
        supervised pool must respawn it and keep answering identically."""
        assert (
            main(
                ["serve", "--index", str(binary_index_file),
                 "--workers", "3", "--chaos-kill", "--rounds", "4",
                 "--query-timeout", "10", "--retries", "5",
                 "2", "5", "2.0"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "2 5 2 -> 2" in captured.out
        assert "restart(s)" in captured.err
        assert "pool ok" in captured.err


class TestExtensionBuilds:
    @pytest.fixture
    def arcs_file(self, tmp_path):
        from repro.graph.digraph import DiGraph
        from repro.graph.io import write_directed_edge_list

        g = DiGraph(4, [(0, 1, 3.0), (1, 2, 3.0), (2, 3, 1.0), (3, 0, 2.0)])
        path = tmp_path / "net.arcs"
        write_directed_edge_list(g, path)
        return path

    @pytest.fixture
    def weighted_file(self, tmp_path):
        from repro.graph.io import write_weighted_edge_list
        from repro.graph.weighted import WeightedGraph

        g = WeightedGraph(
            3, [(0, 1, 2.0, 3.0), (1, 2, 3.0, 3.0), (0, 2, 10.0, 1.0)]
        )
        path = tmp_path / "net.wedges"
        write_weighted_edge_list(g, path)
        return path

    def test_directed_build_and_query_both_engines(
        self, arcs_file, tmp_path, capsys
    ):
        out = tmp_path / "d.wcxb"
        assert (
            main(
                ["build", "--graph", str(arcs_file), "--directed",
                 "--out", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        for engine in ("frozen", "list"):
            assert (
                main(
                    ["query", "--engine", engine, "--index", str(out),
                     "0", "2", "3.0"]
                )
                == 0
            )
            assert "0 2 3 -> 2" in capsys.readouterr().out
        # The arc 2 -> 3 has quality 1: reachable at 1.0, not at 2.0.
        assert main(["query", "--index", str(out), "0", "3", "2.0"]) == 0
        assert "INF" in capsys.readouterr().out

    def test_weighted_build_and_query_both_engines(
        self, weighted_file, tmp_path, capsys
    ):
        out = tmp_path / "w.wcxb"
        assert (
            main(
                ["build", "--graph", str(weighted_file), "--weighted",
                 "--out", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        for engine in ("frozen", "list"):
            assert (
                main(
                    ["query", "--engine", engine, "--index", str(out),
                     "0", "2", "2.0"]
                )
                == 0
            )
            assert "0 2 2 -> 5" in capsys.readouterr().out

    def test_directed_build_from_dataset(self, tmp_path, capsys):
        out = tmp_path / "ny.wcxb"
        assert main(["build", "--dataset", "NY", "--directed",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["stats", "--index", str(out)]) == 0
        assert "FrozenDirectedWCIndex" in capsys.readouterr().out

    def test_extensions_require_binary_out(self, arcs_file, tmp_path):
        with pytest.raises(SystemExit, match="wcxb"):
            main(
                ["build", "--graph", str(arcs_file), "--directed",
                 "--out", str(tmp_path / "d.wci")]
            )

    def test_directed_and_weighted_exclusive(self, arcs_file, tmp_path):
        with pytest.raises(SystemExit, match="exclusive"):
            main(
                ["build", "--graph", str(arcs_file), "--directed",
                 "--weighted", "--out", str(tmp_path / "x.wcxb")]
            )

    def test_profile_on_directed_index(self, arcs_file, tmp_path, capsys):
        # Regression: profile used the undirected label accessor and
        # crashed with AttributeError on a directed .wcxb.
        out = tmp_path / "d.wcxb"
        assert main(["build", "--graph", str(arcs_file), "--directed",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["profile", "--index", str(out), "0", "2"]) == 0
        assert "profile of (0, 2)" in capsys.readouterr().out

    def test_profile_on_weighted_index_rejected(
        self, weighted_file, tmp_path
    ):
        out = tmp_path / "w.wcxb"
        assert main(["build", "--graph", str(weighted_file), "--weighted",
                     "--out", str(out)]) == 0
        with pytest.raises(SystemExit, match="not supported"):
            main(["profile", "--index", str(out), "0", "2"])

    def test_verify_rejects_extension_indexes(
        self, arcs_file, graph_file, tmp_path
    ):
        # Regression: verify crashed with AttributeError instead of
        # explaining that only undirected indexes are supported.
        out = tmp_path / "d.wcxb"
        assert main(["build", "--graph", str(arcs_file), "--directed",
                     "--out", str(out)]) == 0
        with pytest.raises(SystemExit, match="undirected"):
            main(["verify", "--graph", str(graph_file), "--index", str(out)])


class TestSuffixCaseInsensitivity:
    def test_uppercase_wcxb_round_trips(self, graph_file, tmp_path, capsys):
        # Regression: the CLI suffix dispatch was case-sensitive, so an
        # uppercase .WCXB fell through to the text loader and died with
        # a confusing parse error.
        out = tmp_path / "NET.WCXB"
        assert (
            main(
                ["build", "--graph", str(graph_file), "--out", str(out),
                 "--ordering", "identity"]
            )
            == 0
        )
        assert out.read_bytes()[:4] == b"WCXB"
        capsys.readouterr()
        assert (
            main(
                ["query", "--engine", "frozen", "--index", str(out),
                 "2", "5", "2.0"]
            )
            == 0
        )
        assert "2 5 2 -> 2" in capsys.readouterr().out
        assert main(["stats", "--index", str(out)]) == 0
        assert "frozen bytes:" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_output(self, index_file, capsys):
        assert main(["profile", "--index", str(index_file), "0", "4"]) == 0
        out = capsys.readouterr().out
        assert "profile of (0, 4)" in out
        assert "dist 2" in out and "dist 4" in out

    def test_disconnected_profile(self, tmp_path, capsys):
        from repro.core import build_wc_index_plus, save_index
        from repro.graph.graph import Graph

        index = build_wc_index_plus(Graph(3, [(0, 1, 1.0)]))
        path = tmp_path / "d.wci"
        save_index(index, path)
        assert main(["profile", "--index", str(path), "0", "2"]) == 0
        assert "disconnected" in capsys.readouterr().out


class TestStatsAndVerify:
    def test_stats(self, index_file, capsys):
        assert main(["stats", "--index", str(index_file)]) == 0
        out = capsys.readouterr().out
        assert "vertices:        6" in out
        assert "entries:         32" in out  # Table II total

    def test_verify_ok(self, graph_file, index_file, capsys):
        assert (
            main(
                ["verify", "--graph", str(graph_file), "--index", str(index_file)]
            )
            == 0
        )
        assert "VERDICT: OK" in capsys.readouterr().out

    def test_verify_detects_corruption(self, graph_file, index_file, capsys):
        # Corrupt the saved index: double one entry's distance.
        text = index_file.read_text().splitlines()
        for i, line in enumerate(text):
            if line.startswith("E ") and " 1.0 " in line:
                text[i] = line.replace(" 1.0 ", " 3.0 ", 1)
                break
        index_file.write_text("\n".join(text) + "\n")
        code = main(
            ["verify", "--graph", str(graph_file), "--index", str(index_file)]
        )
        assert code == 1
        assert "BROKEN" in capsys.readouterr().out


class TestUpdateCommand:
    @pytest.fixture
    def binary_index(self, graph_file, tmp_path):
        path = tmp_path / "net.wcxb"
        assert (
            main(["build", "--graph", str(graph_file), "--out", str(path)])
            == 0
        )
        return path

    def write_ops(self, tmp_path, text):
        ops = tmp_path / "batch.ops"
        ops.write_text(text)
        return ops

    def test_in_place_patch_updates_the_answers(
        self, graph_file, binary_index, tmp_path, capsys
    ):
        from repro.core import load_frozen

        before = load_frozen(binary_index)
        s, t = 0, 5
        old_answer = before.distance(s, t, 9.0)
        assert old_answer == float("inf")
        ops = self.write_ops(tmp_path, f"insert {s} {t} 9.0\n")
        assert (
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops)]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "dirty vertices" in err and "patch wrote" in err
        patched = load_frozen(binary_index)
        assert patched.distance(s, t, 9.0) == 1.0

    def test_delta_mode_with_out(
        self, graph_file, binary_index, tmp_path, capsys
    ):
        ops = self.write_ops(tmp_path, "insert 0 5 9.0\n")
        out = tmp_path / "next.wcxb"
        assert (
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops), "--mode", "delta",
                 "--out", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        assert binary_index.read_bytes() != out.read_bytes()
        assert main(["stats", "--index", str(out)]) == 0
        assert "delta (" in capsys.readouterr().out

    def test_pool_answers_across_the_epoch_swap(
        self, graph_file, binary_index, tmp_path, capsys
    ):
        ops = self.write_ops(tmp_path, "insert 0 5 9.0\n")
        assert (
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops), "--pool", "1",
                 "0", "5", "9.0"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "# epoch 0 (before update)" in captured.out
        assert "# epoch 1 (after update)" in captured.out
        assert "0 5 9 -> INF" in captured.out  # old generation
        assert "0 5 9 -> 1" in captured.out  # new generation

    def test_sequential_updates_do_not_revert(
        self, graph_file, binary_index, tmp_path, capsys
    ):
        from repro.core import load_frozen

        # Regression: the second in-place update used to rebuild from
        # the stale edge-list file and silently drop the first batch;
        # the graph is now written back alongside the patched image.
        ops1 = self.write_ops(tmp_path, "insert 0 5 9.0\n")
        assert (
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops1)]
            )
            == 0
        )
        assert "graph written back" in capsys.readouterr().err
        # A delete triggers the rebuild path on the second run; pick a
        # real edge (other than the one batch 1 inserted) from the
        # written-back graph file.
        from repro.graph.io import read_edge_list

        u, v, _ = next(
            e
            for e in read_edge_list(graph_file).edges()
            if set(e[:2]) != {0, 5}
        )
        ops2 = self.write_ops(tmp_path, f"delete {u} {v}\n")
        assert (
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops2)]
            )
            == 0
        )
        patched = load_frozen(binary_index)
        assert patched.distance(0, 5, 9.0) == 1.0  # first batch survives

    def test_keep_graph_leaves_the_edge_file_alone(
        self, graph_file, binary_index, tmp_path, capsys
    ):
        before = graph_file.read_bytes()
        ops = self.write_ops(tmp_path, "insert 0 5 9.0\n")
        assert (
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops), "--keep-graph"]
            )
            == 0
        )
        assert "graph written back" not in capsys.readouterr().err
        assert graph_file.read_bytes() == before

    def test_rejects_text_indexes(self, graph_file, index_file, tmp_path):
        ops = self.write_ops(tmp_path, "insert 0 5 9.0\n")
        with pytest.raises(SystemExit, match="wcxb"):
            main(
                ["update", "--index", str(index_file), "--graph",
                 str(graph_file), "--updates", str(ops)]
            )

    def test_queries_require_pool(self, graph_file, binary_index, tmp_path):
        ops = self.write_ops(tmp_path, "insert 0 5 9.0\n")
        with pytest.raises(SystemExit, match="--pool"):
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops), "0", "5", "1.0"]
            )

    def test_missing_edge_reports_the_mutation(
        self, graph_file, binary_index, tmp_path
    ):
        ops = self.write_ops(tmp_path, "delete 0 5\n")
        with pytest.raises(SystemExit, match="no such edge"):
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops)]
            )

    def test_malformed_mutation_file_reports_the_line(
        self, graph_file, binary_index, tmp_path
    ):
        from repro.live import MutationFormatError

        ops = self.write_ops(tmp_path, "insert 0 5 9.0\nbogus\n")
        with pytest.raises(MutationFormatError, match="line 2"):
            main(
                ["update", "--index", str(binary_index), "--graph",
                 str(graph_file), "--updates", str(ops)]
            )


class TestTopAndTraceCommands:
    @pytest.fixture(scope="class")
    def front(self):
        from repro.core import build_wc_index_plus
        from repro.graph.generators import scale_free_network
        from repro.serve import InProcessClient, NetServerThread

        network = scale_free_network(60, 2, num_qualities=5, seed=3)
        frozen = build_wc_index_plus(network).freeze()
        with NetServerThread(InProcessClient(frozen)) as front:
            yield front

    def _address(self, front):
        host, port = front.address
        return f"{host}:{port}"

    def test_top_once_renders_the_dashboard(self, front, capsys):
        assert main(["top", self._address(front), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "latency ms" in out

    def test_top_once_prometheus_format(self, front, capsys):
        assert (
            main(
                ["top", self._address(front), "--once",
                 "--format", "prometheus"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE repro_queries_answered_total counter" in out

    def test_top_once_json_format(self, front, capsys):
        import json

        assert (
            main(["top", self._address(front), "--once", "--format", "json"])
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert "metrics" in report and "stats" in report

    def test_top_bad_address_fails_cleanly(self):
        with pytest.raises(SystemExit, match="cannot connect"):
            main(["top", "127.0.0.1:1", "--once"])

    def test_trace_samples_a_query_and_renders_the_tree(self, front, capsys):
        assert main(["trace", self._address(front), "0", "1", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "trace 0x" in out
        assert "kernel" in out
        assert "serialize" in out

    def test_trace_last_replays_the_ring(self, front, capsys):
        assert main(["trace", self._address(front), "0", "1", "3.0"]) == 0
        capsys.readouterr()
        assert main(["trace", self._address(front), "--last", "1"]) == 0
        assert "trace 0x" in capsys.readouterr().out

    def test_trace_needs_queries_or_last(self, front):
        with pytest.raises(SystemExit, match="--last"):
            main(["trace", self._address(front)])
