"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings

from repro.graph.generators import (
    gnm_random_graph,
    grid_road_network,
    paper_figure1,
    paper_figure3,
    scale_free_network,
)
from repro.graph.graph import Graph

# Property tests build whole indexes per example; generous deadlines and a
# bounded example count keep the suite fast while still covering widely.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")

INF = float("inf")


@pytest.fixture
def figure3() -> Graph:
    """The paper's running example (Figure 3 / Table II)."""
    return paper_figure3()


@pytest.fixture
def figure1():
    """The paper's communication network example (Figure 1)."""
    return paper_figure1()


@pytest.fixture
def small_road() -> Graph:
    return grid_road_network(8, 10, num_qualities=4, seed=3)


@pytest.fixture
def small_social() -> Graph:
    return scale_free_network(60, 3, num_qualities=5, seed=3)


def random_graph(trial: int, max_n: int = 16, num_qualities: int = 4) -> Graph:
    """Deterministic 'random' graph for loop-style tests."""
    rng = random.Random(trial)
    n = rng.randint(2, max_n)
    max_edges = n * (n - 1) // 2
    m = rng.randint(0, min(3 * n, max_edges))
    return gnm_random_graph(n, m, num_qualities=num_qualities, seed=trial)


def thresholds_for(graph: Graph):
    """Interesting constraint values: each distinct quality, one below the
    minimum, midpoints, and one above the maximum."""
    qualities = graph.distinct_qualities()
    if not qualities:
        return [1.0]
    values = list(qualities)
    values.append(qualities[0] - 0.5)
    values.append(qualities[-1] + 1.0)
    for a, b in zip(qualities, qualities[1:]):
        values.append((a + b) / 2.0)
    return values
