"""Tests for ``repro.open_index`` — the unified index-opening front door."""

import pytest

import repro
from repro import open_index
from repro.core import build_wc_index_plus, save_frozen
from repro.core.frozen import FrozenWCIndex
from repro.core.labels import WCIndex
from repro.core.serialize import save_index
from repro.graph.generators import scale_free_network
from repro.serve import ShmIndexImage
from repro.workloads.queries import random_queries


@pytest.fixture(scope="module")
def network():
    return scale_free_network(80, 3, num_qualities=4, seed=13)


@pytest.fixture(scope="module")
def index(network):
    return build_wc_index_plus(network)


@pytest.fixture(scope="module")
def workload(network):
    return list(random_queries(network, 150, seed=8))


@pytest.fixture(scope="module")
def binary_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("api") / "index.wcxb"
    save_frozen(index.freeze(), path)
    return path


@pytest.fixture(scope="module")
def text_path(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("api") / "index.wci"
    save_index(index, path)
    return path


class TestDispatch:
    def test_binary_auto_is_frozen(self, binary_path):
        assert isinstance(open_index(binary_path), FrozenWCIndex)

    def test_text_auto_is_list(self, text_path):
        assert isinstance(open_index(text_path), WCIndex)

    def test_text_frozen_freezes(self, text_path):
        assert isinstance(
            open_index(text_path, engine="frozen"), FrozenWCIndex
        )

    def test_binary_list_thaws(self, binary_path):
        assert isinstance(open_index(binary_path, engine="list"), WCIndex)

    def test_binary_mmap(self, binary_path, index, workload):
        engine = open_index(binary_path, mode="mmap")
        try:
            assert engine.distance_many(workload) == index.distance_many(
                workload
            )
        finally:
            engine.release()

    def test_attach_buffer(self, index, workload):
        import io

        buffer = io.BytesIO()
        save_frozen(index.freeze(), buffer)
        engine = open_index(buffer.getvalue(), mode="attach")
        assert engine.distance_many(workload) == index.distance_many(workload)

    def test_shm_segment(self, index, workload):
        with ShmIndexImage(index.freeze()) as image:
            with open_index(image.name, mode="shm") as engine:
                assert engine.distance_many(workload) == (
                    index.distance_many(workload)
                )

    def test_every_mode_answers_identically(
        self, binary_path, text_path, index, workload
    ):
        expected = index.distance_many(workload)
        engines = [
            open_index(binary_path),
            open_index(binary_path, engine="list"),
            open_index(binary_path, mode="mmap"),
            open_index(text_path),
            open_index(text_path, engine="frozen"),
        ]
        try:
            for engine in engines:
                assert engine.distance_many(workload) == expected
        finally:
            for engine in engines:
                release = getattr(engine, "release", None)
                if release is not None:
                    release()

    def test_accepts_str_paths(self, binary_path, workload):
        engine = open_index(str(binary_path))
        assert isinstance(engine, FrozenWCIndex)

    def test_backend_is_pinned(self, binary_path):
        engine = open_index(binary_path, backend="stdlib")
        assert engine.kernel_backend == "stdlib"

    def test_exported_from_package_root(self):
        assert repro.open_index is open_index
        assert "open_index" in repro.__all__


class TestValidation:
    def test_unknown_engine(self, binary_path):
        with pytest.raises(ValueError, match="unknown engine"):
            open_index(binary_path, engine="turbo")

    def test_unknown_mode(self, binary_path):
        with pytest.raises(ValueError, match="unknown mode"):
            open_index(binary_path, mode="warp")

    def test_list_engine_has_no_mmap(self, binary_path):
        with pytest.raises(ValueError, match="list engine"):
            open_index(binary_path, engine="list", mode="mmap")

    def test_mmap_needs_binary(self, text_path):
        with pytest.raises(ValueError, match="binary .wcxb"):
            open_index(text_path, mode="mmap")

    def test_path_modes_reject_buffers(self):
        with pytest.raises(TypeError, match="opens a path"):
            open_index(b"\x00\x01")

    def test_shm_mode_rejects_non_names(self):
        with pytest.raises(TypeError, match="segment name"):
            open_index(123, mode="shm")
