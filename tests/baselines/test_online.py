"""Tests for the online (index-free) baselines."""

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.online import (
    BidirectionalConstrainedBFS,
    ConstrainedBFS,
    PartitionedBFS,
    PartitionedDijkstra,
)
from repro.graph.generators import paper_figure3, path_graph
from repro.graph.graph import Graph

INF = float("inf")


class TestConstrainedBFS:
    def test_paper_example_distances(self):
        # Example 2/3 facts about Figure 3.
        oracle = ConstrainedBFS(paper_figure3())
        assert oracle.distance(2, 5, 2.0) == 2.0  # via v3, qualities 4,2
        assert oracle.distance(0, 4, 1.0) == 2.0  # v0-v3-v4
        assert oracle.distance(0, 4, 2.0) == 3.0  # v0-v1-v3-v4
        assert oracle.distance(0, 4, 3.0) == 4.0  # v0-v1-v2-v3-v4

    def test_same_vertex_is_zero(self):
        oracle = ConstrainedBFS(path_graph(3))
        assert oracle.distance(1, 1, 99.0) == 0.0

    def test_unreachable_is_inf(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        oracle = ConstrainedBFS(g)
        assert oracle.distance(0, 3, 1.0) == INF

    def test_constraint_above_all_qualities(self):
        oracle = ConstrainedBFS(path_graph(3, [1.0, 2.0]))
        assert oracle.distance(0, 2, 3.0) == INF

    def test_out_of_range_raises(self):
        oracle = ConstrainedBFS(path_graph(3))
        with pytest.raises(ValueError):
            oracle.distance(0, 5, 1.0)

    def test_single_source_matches_pairwise(self):
        g = random_graph(5)
        oracle = ConstrainedBFS(g)
        for w in thresholds_for(g):
            sweep = oracle.single_source(0, w)
            for t in g.vertices():
                assert sweep[t] == oracle.distance(0, t, w)


class TestAgreementAcrossEngines:
    @pytest.mark.parametrize("trial", range(12))
    def test_all_online_engines_agree(self, trial):
        g = random_graph(trial)
        reference = ConstrainedBFS(g)
        others = [
            PartitionedBFS(g),
            PartitionedDijkstra(g),
            BidirectionalConstrainedBFS(g),
        ]
        for w in thresholds_for(g):
            for s in g.vertices():
                for t in g.vertices():
                    expected = reference.distance(s, t, w)
                    for engine in others:
                        assert engine.distance(s, t, w) == expected, (
                            type(engine).__name__,
                            s,
                            t,
                            w,
                        )


class TestPartitionedEngines:
    def test_partition_reuse(self):
        g = random_graph(3)
        wbfs = PartitionedBFS(g)
        dijkstra = PartitionedDijkstra(g, wbfs.partition)
        assert dijkstra.distance(0, 0, 1.0) == 0.0

    def test_constraint_above_max_short_circuits(self):
        g = path_graph(3, [1.0, 1.0])
        assert PartitionedBFS(g).distance(0, 2, 9.0) == INF
        assert PartitionedDijkstra(g).distance(0, 2, 9.0) == INF

    def test_out_of_range_raises(self):
        g = path_graph(3)
        for engine in (
            PartitionedBFS(g),
            PartitionedDijkstra(g),
            BidirectionalConstrainedBFS(g),
        ):
            with pytest.raises(ValueError):
                engine.distance(-1, 0, 1.0)


class TestKNearest:
    def test_levels_and_order(self):
        g = path_graph(6)
        oracle = ConstrainedBFS(g)
        assert oracle.k_nearest(0, 1.0, 3) == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_respects_constraint(self):
        g = path_graph(4, [3.0, 1.0, 3.0])
        oracle = ConstrainedBFS(g)
        assert oracle.k_nearest(0, 2.0, 10) == [(1, 1.0)]

    def test_tie_break_by_vertex_id(self):
        from repro.graph.generators import star_graph

        oracle = ConstrainedBFS(star_graph(5))
        assert oracle.k_nearest(0, 1.0, 3) == [(1, 1.0), (2, 1.0), (3, 1.0)]

    def test_include_source(self):
        g = path_graph(3)
        oracle = ConstrainedBFS(g)
        assert oracle.k_nearest(1, 1.0, 2, include_source=True) == [
            (1, 0.0),
            (0, 1.0),
        ]

    def test_fewer_than_k_available(self):
        g = Graph(4, [(0, 1, 1.0)])
        oracle = ConstrainedBFS(g)
        assert oracle.k_nearest(0, 1.0, 10) == [(1, 1.0)]

    def test_matches_single_source(self):
        g = random_graph(9)
        oracle = ConstrainedBFS(g)
        for w in thresholds_for(g):
            sweep = oracle.single_source(0, w)
            expected = sorted(
                ((v, d) for v, d in enumerate(sweep) if v != 0 and d != INF),
                key=lambda item: (item[1], item[0]),
            )
            k = len(expected)
            assert oracle.k_nearest(0, w, k) == expected

    def test_negative_k_rejected(self):
        oracle = ConstrainedBFS(path_graph(3))
        with pytest.raises(ValueError):
            oracle.k_nearest(0, 1.0, -1)


class TestBidirectional:
    def test_long_path_exact(self):
        g = path_graph(30)
        engine = BidirectionalConstrainedBFS(g)
        assert engine.distance(0, 29, 1.0) == 29.0
        assert engine.distance(5, 20, 1.0) == 15.0

    def test_adjacent(self):
        g = path_graph(2)
        assert BidirectionalConstrainedBFS(g).distance(0, 1, 1.0) == 1.0
