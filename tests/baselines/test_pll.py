"""Tests for classic Pruned Landmark Labeling."""

import pytest

from tests.helpers import random_graph

from repro.baselines.online import ConstrainedBFS
from repro.baselines.pll import PrunedLandmarkLabeling, degree_descending_order
from repro.graph.generators import (
    complete_graph,
    gnm_random_graph,
    path_graph,
    scale_free_network,
    star_graph,
)

INF = float("inf")


class TestCorrectness:
    @pytest.mark.parametrize("trial", range(15))
    def test_matches_bfs_on_random_graphs(self, trial):
        g = random_graph(trial, max_n=20)
        pll = PrunedLandmarkLabeling(g)
        oracle = ConstrainedBFS(g)
        for s in g.vertices():
            truth = oracle.single_source(s, 0.0)  # unconstrained
            for t in g.vertices():
                assert pll.distance(s, t) == truth[t], (trial, s, t)

    def test_path_graph(self):
        pll = PrunedLandmarkLabeling(path_graph(12))
        assert pll.distance(0, 11) == 11
        assert pll.distance(3, 3) == 0

    def test_disconnected_inf(self):
        from repro.graph.graph import Graph

        pll = PrunedLandmarkLabeling(Graph(4, [(0, 1, 1.0), (2, 3, 1.0)]))
        assert pll.distance(0, 2) == INF

    def test_custom_order_still_correct(self):
        g = gnm_random_graph(12, 24, seed=6)
        oracle = ConstrainedBFS(g)
        pll = PrunedLandmarkLabeling(g, order=list(range(12)))
        for s in g.vertices():
            truth = oracle.single_source(s, 0.0)
            for t in g.vertices():
                assert pll.distance(s, t) == truth[t]

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            PrunedLandmarkLabeling(path_graph(3), order=[0, 0, 1])

    def test_out_of_range_query(self):
        pll = PrunedLandmarkLabeling(path_graph(3))
        with pytest.raises(ValueError):
            pll.distance(0, 7)


class TestOrdering:
    def test_degree_descending(self):
        g = star_graph(5)
        order = degree_descending_order(g)
        assert order[0] == 0  # the hub
        assert sorted(order) == list(range(6))

    def test_hub_pruning_on_star(self):
        # With the hub first, every leaf label holds just hub + self.
        pll = PrunedLandmarkLabeling(star_graph(10))
        assert pll.entry_count() == 1 + 10 * 2

    def test_complete_graph_label_count(self):
        # On K_n nothing prunes distance-1 entries (a 2-hop detour through
        # an earlier hub costs 2 > 1), so each root labels every
        # lower-ranked vertex once: n self entries + n(n-1)/2.
        pll = PrunedLandmarkLabeling(complete_graph(8))
        assert pll.entry_count() == 8 + 28


class TestIntrospection:
    def test_label_of_returns_vertex_ids(self):
        g = star_graph(3)
        pll = PrunedLandmarkLabeling(g)
        labels = pll.label_of(1)
        assert (0, 1) in labels  # hub at distance 1
        assert (1, 0) in labels  # self entry

    def test_size_accounting(self):
        g = scale_free_network(40, 2, seed=0)
        pll = PrunedLandmarkLabeling(g)
        assert pll.size_bytes() == 8 * pll.entry_count()
        assert "entries=" in repr(pll)

    def test_order_property_is_copy(self):
        pll = PrunedLandmarkLabeling(path_graph(4))
        order = pll.order
        order[0] = 99
        assert pll.order[0] != 99
