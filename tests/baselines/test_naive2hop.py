"""Tests for the Naive per-quality 2-hop baseline."""

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.naive2hop import IndexTooLargeError, NaivePerQualityIndex
from repro.baselines.online import ConstrainedBFS
from repro.graph.generators import gnm_random_graph, paper_figure3, path_graph
from repro.graph.graph import Graph

INF = float("inf")


class TestCorrectness:
    @pytest.mark.parametrize("trial", range(12))
    def test_matches_bfs(self, trial):
        g = random_graph(trial)
        naive = NaivePerQualityIndex(g)
        oracle = ConstrainedBFS(g)
        for w in thresholds_for(g):
            for s in g.vertices():
                truth = oracle.single_source(s, w)
                for t in g.vertices():
                    assert naive.distance(s, t, w) == truth[t], (trial, s, t, w)

    def test_paper_example(self):
        naive = NaivePerQualityIndex(paper_figure3())
        assert naive.distance(2, 5, 2.0) == 2.0
        assert naive.distance(0, 4, 3.0) == 4.0
        assert naive.distance(0, 4, 5.0) == INF

    def test_same_vertex(self):
        naive = NaivePerQualityIndex(path_graph(3))
        assert naive.distance(1, 1, 100.0) == 0.0

    def test_constraint_above_max_is_inf(self):
        naive = NaivePerQualityIndex(path_graph(3, [1.0, 2.0]))
        assert naive.distance(0, 2, 2.5) == INF

    def test_out_of_range_raises(self):
        naive = NaivePerQualityIndex(path_graph(3))
        with pytest.raises(ValueError):
            naive.distance(0, 9, 1.0)


class TestStructure:
    def test_one_index_per_distinct_quality(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 3.0), (2, 3, 3.0), (0, 3, 7.0)])
        naive = NaivePerQualityIndex(g)
        assert naive.thresholds == [1.0, 3.0, 7.0]
        assert naive.num_indexes == 3

    def test_level_indexes_shrink(self):
        g = gnm_random_graph(15, 40, num_qualities=4, seed=2)
        naive = NaivePerQualityIndex(g)
        # Higher thresholds filter more edges; labels cannot grow.
        counts = [
            naive.index_at_level(i).entry_count() for i in range(naive.num_indexes)
        ]
        assert counts[0] >= counts[-1]

    def test_entry_and_byte_accounting(self):
        g = gnm_random_graph(10, 20, num_qualities=3, seed=1)
        naive = NaivePerQualityIndex(g)
        assert naive.entry_count() == sum(
            naive.index_at_level(i).entry_count() for i in range(naive.num_indexes)
        )
        assert naive.size_bytes() == 8 * naive.entry_count()

    def test_repr(self):
        naive = NaivePerQualityIndex(path_graph(4))
        assert "levels=1" in repr(naive)


class TestBudget:
    def test_budget_exceeded_raises(self):
        g = gnm_random_graph(30, 120, num_qualities=5, seed=5)
        with pytest.raises(IndexTooLargeError):
            NaivePerQualityIndex(g, max_total_entries=10)

    def test_budget_not_exceeded_builds(self):
        g = path_graph(5)
        naive = NaivePerQualityIndex(g, max_total_entries=10_000)
        assert naive.distance(0, 4, 1.0) == 4.0

    def test_budget_error_is_memory_error(self):
        # The harness treats it as the paper's out-of-memory INF.
        assert issubclass(IndexTooLargeError, MemoryError)
