"""Tests for the LCR-adapt baseline."""

import pytest

from tests.helpers import random_graph, thresholds_for

from repro.baselines.lcr import LCRAdaptIndex, LCRIndexExplosionError
from repro.baselines.online import ConstrainedBFS
from repro.core import WCIndexBuilder
from repro.graph.generators import gnm_random_graph, paper_figure3, path_graph

INF = float("inf")


class TestCorrectness:
    @pytest.mark.parametrize("trial", range(12))
    def test_matches_bfs(self, trial):
        g = random_graph(trial, max_n=14)
        lcr = LCRAdaptIndex(g)
        oracle = ConstrainedBFS(g)
        for w in thresholds_for(g):
            for s in g.vertices():
                truth = oracle.single_source(s, w)
                for t in g.vertices():
                    assert lcr.distance(s, t, w) == truth[t], (trial, s, t, w)

    def test_paper_example(self):
        lcr = LCRAdaptIndex(paper_figure3())
        assert lcr.distance(2, 5, 2.0) == 2.0
        assert lcr.distance(0, 8 - 3, 3.0) == lcr.distance(0, 5, 3.0)

    def test_same_vertex(self):
        lcr = LCRAdaptIndex(path_graph(4))
        assert lcr.distance(2, 2, 5.0) == 0.0

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            LCRAdaptIndex(path_graph(3), order=[1, 1, 0])

    def test_out_of_range_query(self):
        lcr = LCRAdaptIndex(path_graph(3))
        with pytest.raises(ValueError):
            lcr.distance(0, 3, 1.0)


class TestBlowup:
    def test_entry_budget_raises(self):
        g = gnm_random_graph(24, 100, num_qualities=5, seed=3)
        with pytest.raises(LCRIndexExplosionError):
            LCRAdaptIndex(g, max_total_entries=20)

    def test_larger_than_wc_index(self):
        # The headline comparison: set-inclusion dominance retains far more
        # entries than scalar quality dominance.
        g = gnm_random_graph(30, 90, num_qualities=5, seed=7)
        lcr = LCRAdaptIndex(g)
        wc = WCIndexBuilder(g, "degree").build()
        assert lcr.entry_count() > wc.entry_count()

    def test_size_accounting(self):
        g = path_graph(5)
        lcr = LCRAdaptIndex(g)
        assert lcr.size_bytes() == 16 * lcr.entry_count()
        assert "entries=" in repr(lcr)


class TestMaskSemantics:
    def test_single_quality_graph_degenerates_to_pll(self):
        from repro.baselines.pll import PrunedLandmarkLabeling

        g = gnm_random_graph(15, 35, num_qualities=1, seed=4)
        lcr = LCRAdaptIndex(g, order=list(range(15)))
        pll = PrunedLandmarkLabeling(g, order=list(range(15)))
        for s in g.vertices():
            for t in g.vertices():
                assert lcr.distance(s, t, 1.0) == pll.distance(s, t)
